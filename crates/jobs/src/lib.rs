//! Demand-driven incremental job engine.
//!
//! A [`Job`] is one unit of pipeline work keyed by a content fingerprint
//! of its *actual inputs* — file bytes plus the option fingerprints the
//! output depends on — never by position in the corpus or by what came
//! before it. Demanding a job resolves it through three layers:
//!
//! 1. **Memo table** (in-process): outputs already produced this run are
//!    shared as `Arc`s — counted as `jobs.<kind>.memo_hits`.
//! 2. **Durable store** (optional [`ArtifactStore`]): jobs whose
//!    [`Job::DURABLE`] flag is set encode their output into the
//!    content-addressed store; a later run (or a later pass of this run)
//!    decodes it back — counted as `jobs.<kind>.store_hits`. A missing or
//!    undecodable entry degrades to a miss (`jobs.<kind>.store_misses`).
//! 3. **Execution**: the job's [`Job::run`] body computes the output under
//!    a `job.<kind>` span — counted as `jobs.<kind>.executed` — and, when
//!    durable, writes it back to the store.
//!
//! Because keys are content fingerprints, the dependency graph needs no
//! persisted edge list: an edit to one file changes exactly the keys in
//! that file's cone, and every other key resolves out of the memo table or
//! the store untouched. The engine records the parent→child demand edges
//! it actually observes (see [`JobEngine::dep_edges`]) for tests and
//! debugging, not for invalidation.
//!
//! Suspension is structured recursion: a job that needs another job's
//! output demands it through its [`JobCx`] and continues when the demand
//! returns. [`JobEngine::demand_par`] fans a batch of demands across
//! rayon workers.
//!
//! Determinism: the same key always resolves to the same bytes, so
//! concurrent demands of one key may duplicate work but never diverge —
//! the store write is atomic last-wins of identical content. Counters
//! (`jobs.*`) reflect cache state and scheduling, so they are
//! machine-local telemetry and must stay out of deterministic report
//! sections.
//!
//! Cost attribution: alongside the aggregate counters, every resolved
//! demand records a per-key cost record (kind, key, parent, hit class,
//! wall time, decoded bytes) into `uspec_telemetry::attribution`, from
//! which report assembly derives the `timings.attribution` cost tree and
//! collapsed-stack flamegraph export.

#![warn(missing_docs)]

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, RwLock};

use rayon::prelude::*;
use uspec_store::{ArtifactStore, Fingerprint, Lookup};
use uspec_telemetry::attribution::{self, CostOutcome, JobCostRec};
use uspec_telemetry::{counter, log_warn, span, SpanGuard};

/// The fixed set of job kinds the pipeline schedules.
///
/// Kinds name telemetry rows (`job.<kind>` spans, `jobs.<kind>.*`
/// counters), so the set is closed: the `counter!`/`span!` macros need
/// literal names.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JobKind {
    /// Parse + lower + per-body pointer analysis + event-graph build for
    /// one file. In-memory only: graphs are large and cheap to rebuild
    /// relative to their serialized size.
    Analyze,
    /// Per-file corpus statistics delta (durable).
    Stats,
    /// Per-file training samples (durable).
    Samples,
    /// Per-file candidate-pair blueprints: pattern matches with labeled
    /// featurizations, scorable by any model (durable).
    Pairs,
    /// Per-file value digests of the samples and pairs outputs — the tiny
    /// durable record that powers early cutoff: downstream keys fold these
    /// digests instead of file contents.
    Digest,
    /// The trained edge model over the whole kept corpus (durable).
    Model,
    /// Corpus-level scoring of every kept file's blueprints under one
    /// model, merged in corpus order (durable).
    Score,
}

/// Every kind, in scheduling order (for report assembly and tests).
pub const ALL_KINDS: [JobKind; 7] = [
    JobKind::Analyze,
    JobKind::Stats,
    JobKind::Samples,
    JobKind::Pairs,
    JobKind::Digest,
    JobKind::Model,
    JobKind::Score,
];

impl JobKind {
    /// The kind's telemetry name segment.
    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::Analyze => "analyze",
            JobKind::Stats => "stats",
            JobKind::Samples => "samples",
            JobKind::Pairs => "pairs",
            JobKind::Digest => "digest",
            JobKind::Model => "model",
            JobKind::Score => "score",
        }
    }

    fn count_executed(self) {
        counter!("jobs.executed").inc();
        match self {
            JobKind::Analyze => counter!("jobs.analyze.executed").inc(),
            JobKind::Stats => counter!("jobs.stats.executed").inc(),
            JobKind::Samples => counter!("jobs.samples.executed").inc(),
            JobKind::Pairs => counter!("jobs.pairs.executed").inc(),
            JobKind::Digest => counter!("jobs.digest.executed").inc(),
            JobKind::Model => counter!("jobs.model.executed").inc(),
            JobKind::Score => counter!("jobs.score.executed").inc(),
        }
    }

    fn count_memo_hit(self) {
        counter!("jobs.reused").inc();
        match self {
            JobKind::Analyze => counter!("jobs.analyze.memo_hits").inc(),
            JobKind::Stats => counter!("jobs.stats.memo_hits").inc(),
            JobKind::Samples => counter!("jobs.samples.memo_hits").inc(),
            JobKind::Pairs => counter!("jobs.pairs.memo_hits").inc(),
            JobKind::Digest => counter!("jobs.digest.memo_hits").inc(),
            JobKind::Model => counter!("jobs.model.memo_hits").inc(),
            JobKind::Score => counter!("jobs.score.memo_hits").inc(),
        }
    }

    fn count_store_hit(self) {
        counter!("jobs.reused").inc();
        match self {
            JobKind::Analyze => counter!("jobs.analyze.store_hits").inc(),
            JobKind::Stats => counter!("jobs.stats.store_hits").inc(),
            JobKind::Samples => counter!("jobs.samples.store_hits").inc(),
            JobKind::Pairs => counter!("jobs.pairs.store_hits").inc(),
            JobKind::Digest => counter!("jobs.digest.store_hits").inc(),
            JobKind::Model => counter!("jobs.model.store_hits").inc(),
            JobKind::Score => counter!("jobs.score.store_hits").inc(),
        }
    }

    fn count_store_miss(self) {
        match self {
            JobKind::Analyze => counter!("jobs.analyze.store_misses").inc(),
            JobKind::Stats => counter!("jobs.stats.store_misses").inc(),
            JobKind::Samples => counter!("jobs.samples.store_misses").inc(),
            JobKind::Pairs => counter!("jobs.pairs.store_misses").inc(),
            JobKind::Digest => counter!("jobs.digest.store_misses").inc(),
            JobKind::Model => counter!("jobs.model.store_misses").inc(),
            JobKind::Score => counter!("jobs.score.store_misses").inc(),
        }
    }

    fn exec_span(self, key: Fingerprint) -> SpanGuard {
        match self {
            JobKind::Analyze => span!("job.analyze", "{key}"),
            JobKind::Stats => span!("job.stats", "{key}"),
            JobKind::Samples => span!("job.samples", "{key}"),
            JobKind::Pairs => span!("job.pairs", "{key}"),
            JobKind::Digest => span!("job.digest", "{key}"),
            JobKind::Model => span!("job.model", "{key}"),
            JobKind::Score => span!("job.score", "{key}"),
        }
    }

    fn decode_span(self) -> SpanGuard {
        match self {
            JobKind::Analyze => span!("store.decode.analyze"),
            JobKind::Stats => span!("store.decode.stats"),
            JobKind::Samples => span!("store.decode.samples"),
            JobKind::Pairs => span!("store.decode.pairs"),
            JobKind::Digest => span!("store.decode.digest"),
            JobKind::Model => span!("store.decode.model"),
            JobKind::Score => span!("store.decode.score"),
        }
    }
}

impl std::fmt::Display for JobKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One unit of tracked pipeline work.
///
/// The contract that makes incremental reuse sound: [`Job::key`] must
/// cover *every* input [`Job::run`] reads — file content, option
/// fingerprints, seeds — so equal keys imply byte-identical outputs.
pub trait Job: Send + Sync {
    /// The output type; shared behind an `Arc` once produced.
    type Output: Send + Sync + 'static;

    /// Whether outputs round-trip through the durable store. Durable jobs
    /// must implement [`Job::encode`] and [`Job::decode`].
    const DURABLE: bool = false;

    /// The kind (telemetry bucket) this job belongs to.
    fn kind(&self) -> JobKind;

    /// Content fingerprint of the job's full input set.
    fn key(&self) -> Fingerprint;

    /// Computes the output. Nested inputs are demanded through `cx`.
    fn run(&self, cx: &JobCx<'_, '_>) -> Self::Output;

    /// Serializes an output for the durable store (durable jobs only).
    fn encode(_out: &Self::Output) -> Option<Vec<u8>> {
        None
    }

    /// Deserializes a stored output. `None` degrades to a store miss and
    /// re-execution, so a stale or foreign payload can never poison a run.
    fn decode(_bytes: &[u8]) -> Option<Self::Output> {
        None
    }
}

/// How a demand was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Found in the in-process memo table.
    MemoHit,
    /// Decoded from the durable store.
    StoreHit,
    /// Computed by running the job body.
    Executed,
}

/// A resolved demand: the shared output plus how it was obtained.
pub struct Resolved<T> {
    /// The job's output.
    pub value: Arc<T>,
    /// Which layer satisfied the demand.
    pub outcome: Outcome,
}

impl<T> Clone for Resolved<T> {
    fn clone(&self) -> Self {
        Resolved {
            value: Arc::clone(&self.value),
            outcome: self.outcome,
        }
    }
}

/// One observed parent→child demand edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// Demanding job, `None` when demanded from the driver.
    pub parent: Option<(JobKind, Fingerprint)>,
    /// Demanded job.
    pub child: (JobKind, Fingerprint),
}

enum Entry {
    Resident(Arc<dyn Any + Send + Sync>),
}

/// Execution context passed to a running job so it can demand its inputs;
/// nested demands are recorded as dependency edges.
pub struct JobCx<'e, 's> {
    engine: &'e JobEngine<'s>,
    me: (JobKind, Fingerprint),
}

impl JobCx<'_, '_> {
    /// Demands `job` as an input of the running job.
    pub fn demand<J: Job>(&self, job: &J) -> Resolved<J::Output> {
        self.engine.demand_from(Some(self.me), job)
    }

    /// Demands every job in `jobs` across rayon workers, preserving order;
    /// each is recorded as an input of the running job.
    pub fn demand_par<J: Job>(&self, jobs: &[J]) -> Vec<Resolved<J::Output>> {
        jobs.par_iter()
            .map(|j| self.engine.demand_from(Some(self.me), j))
            .collect()
    }
}

/// The demand-driven executor: memo table, durable backing store, forced
/// re-execution set, and observed dependency edges.
pub struct JobEngine<'s> {
    store: Option<&'s ArtifactStore>,
    memo: RwLock<HashMap<Fingerprint, Entry>>,
    forced: RwLock<HashSet<Fingerprint>>,
    deps: Mutex<Vec<DepEdge>>,
}

impl<'s> JobEngine<'s> {
    /// A fresh engine. With `store: None` every durable output stays
    /// memo-resident for the lifetime of the engine; with a store, durable
    /// outputs also survive into later runs.
    pub fn new(store: Option<&'s ArtifactStore>) -> JobEngine<'s> {
        JobEngine {
            store,
            memo: RwLock::new(HashMap::new()),
            forced: RwLock::new(HashSet::new()),
            deps: Mutex::new(Vec::new()),
        }
    }

    /// The backing store, if any.
    pub fn store(&self) -> Option<&'s ArtifactStore> {
        self.store
    }

    /// Marks `key` for forced re-execution: its first demand skips the
    /// memo table and the store, runs the job body, and (for durable jobs)
    /// rewrites the store entry. Belt-and-suspenders for inputs the user
    /// asserts have changed even if fingerprints say otherwise.
    pub fn force(&self, key: Fingerprint) {
        self.forced
            .write()
            .expect("forced set poisoned")
            .insert(key);
    }

    /// Demands a job from the driver (no parent).
    pub fn demand<J: Job>(&self, job: &J) -> Resolved<J::Output> {
        self.demand_from(None, job)
    }

    /// Demands every job in `jobs` across rayon workers, preserving order.
    pub fn demand_par<J: Job>(&self, jobs: &[J]) -> Vec<Resolved<J::Output>> {
        jobs.par_iter().map(|j| self.demand(j)).collect()
    }

    /// Drops the memo entries for `keys` (typically analyze outputs at a
    /// shard boundary, bounding resident graphs to one shard's worth).
    /// Durable outputs remain recoverable from the store; non-durable ones
    /// recompute on next demand.
    pub fn evict(&self, keys: impl IntoIterator<Item = Fingerprint>) {
        let mut memo = self.memo.write().expect("memo table poisoned");
        for key in keys {
            memo.remove(&key);
        }
    }

    /// The parent→child demand edges observed so far, in completion order.
    pub fn dep_edges(&self) -> Vec<DepEdge> {
        self.deps.lock().expect("dep edges poisoned").clone()
    }

    /// Records one per-key cost record for the attribution roll-up.
    /// Separate from the `jobs.*` counters: counters are cheap aggregates,
    /// records keep the key and parent so the cost *tree* is recoverable.
    fn record_cost(
        kind: JobKind,
        key: Fingerprint,
        parent: Option<(JobKind, Fingerprint)>,
        outcome: CostOutcome,
        started: std::time::Instant,
        decoded_bytes: u64,
    ) {
        if !uspec_telemetry::enabled() {
            return;
        }
        attribution::record(JobCostRec {
            kind: kind.as_str(),
            key: key.hex(),
            parent: parent.map(|(k, f)| (k.as_str(), f.hex())),
            outcome,
            wall_ns: started.elapsed().as_nanos() as u64,
            decoded_bytes,
        });
    }

    fn demand_from<J: Job>(
        &self,
        parent: Option<(JobKind, Fingerprint)>,
        job: &J,
    ) -> Resolved<J::Output> {
        let started = std::time::Instant::now();
        let kind = job.kind();
        let key = job.key();
        self.deps.lock().expect("dep edges poisoned").push(DepEdge {
            parent,
            child: (kind, key),
        });

        let forced = self
            .forced
            .write()
            .expect("forced set poisoned")
            .remove(&key);
        if !forced {
            if let Some(Entry::Resident(any)) =
                self.memo.read().expect("memo table poisoned").get(&key)
            {
                let value = Arc::clone(any)
                    .downcast::<J::Output>()
                    .expect("job key resolved to a foreign output type");
                kind.count_memo_hit();
                Self::record_cost(kind, key, parent, CostOutcome::MemoHit, started, 0);
                return Resolved {
                    value,
                    outcome: Outcome::MemoHit,
                };
            }
            if J::DURABLE {
                if let Some(store) = self.store {
                    let lookup = store.get(key);
                    if let Lookup::Hit(bytes) = lookup {
                        let decoded = {
                            let _span = kind.decode_span();
                            J::decode(&bytes)
                        };
                        if let Some(out) = decoded {
                            let value = Arc::new(out);
                            self.remember(key, &value);
                            kind.count_store_hit();
                            Self::record_cost(
                                kind,
                                key,
                                parent,
                                CostOutcome::StoreHit,
                                started,
                                bytes.len() as u64,
                            );
                            return Resolved {
                                value,
                                outcome: Outcome::StoreHit,
                            };
                        }
                        log_warn!("undecodable store entry for {kind} job {key}; recomputing");
                    }
                    kind.count_store_miss();
                }
            }
        }

        let out = {
            let _span = kind.exec_span(key);
            kind.count_executed();
            job.run(&JobCx {
                engine: self,
                me: (kind, key),
            })
        };
        let value = Arc::new(out);
        if J::DURABLE {
            if let Some(store) = self.store {
                match J::encode(&value) {
                    Some(bytes) => {
                        if let Err(e) = store.put(key, &bytes) {
                            log_warn!("failed to store {kind} job {key}: {e}");
                        }
                    }
                    None => log_warn!("durable {kind} job {key} produced no encoding"),
                }
            }
        }
        self.remember(key, &value);
        // The executed wall spans the whole resolution — the `job.<kind>`
        // span nests strictly inside it, so per-kind `exec_ns` is always at
        // least the span's `total_ns` (cross-validated by check_report).
        Self::record_cost(kind, key, parent, CostOutcome::Executed, started, 0);
        Resolved {
            value,
            outcome: Outcome::Executed,
        }
    }

    fn remember<T: Send + Sync + 'static>(&self, key: Fingerprint, value: &Arc<T>) {
        let any: Arc<dyn Any + Send + Sync> = Arc::clone(value) as Arc<dyn Any + Send + Sync>;
        self.memo
            .write()
            .expect("memo table poisoned")
            .insert(key, Entry::Resident(any));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use uspec_store::fingerprint_str;

    struct Doubler<'a> {
        input: u64,
        runs: &'a AtomicU64,
    }

    impl Job for Doubler<'_> {
        type Output = u64;
        const DURABLE: bool = true;

        fn kind(&self) -> JobKind {
            JobKind::Stats
        }

        fn key(&self) -> Fingerprint {
            fingerprint_str(&format!("doubler:{}", self.input))
        }

        fn run(&self, _cx: &JobCx<'_, '_>) -> u64 {
            self.runs.fetch_add(1, Ordering::Relaxed);
            self.input * 2
        }

        fn encode(out: &u64) -> Option<Vec<u8>> {
            Some(out.to_le_bytes().to_vec())
        }

        fn decode(bytes: &[u8]) -> Option<u64> {
            Some(u64::from_le_bytes(bytes.try_into().ok()?))
        }
    }

    /// A job that demands another job through its context.
    struct Chained<'a> {
        input: u64,
        runs: &'a AtomicU64,
        inner_runs: &'a AtomicU64,
    }

    impl Job for Chained<'_> {
        type Output = u64;

        fn kind(&self) -> JobKind {
            JobKind::Score
        }

        fn key(&self) -> Fingerprint {
            fingerprint_str(&format!("chained:{}", self.input))
        }

        fn run(&self, cx: &JobCx<'_, '_>) -> u64 {
            self.runs.fetch_add(1, Ordering::Relaxed);
            let doubled = cx.demand(&Doubler {
                input: self.input,
                runs: self.inner_runs,
            });
            *doubled.value + 1
        }
    }

    fn tmp_store(name: &str) -> (std::path::PathBuf, ArtifactStore) {
        let dir =
            std::env::temp_dir().join(format!("uspec-jobs-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn demand_memoizes_within_a_run() {
        let runs = AtomicU64::new(0);
        let engine = JobEngine::new(None);
        let job = Doubler {
            input: 21,
            runs: &runs,
        };
        let first = engine.demand(&job);
        assert_eq!(*first.value, 42);
        assert_eq!(first.outcome, Outcome::Executed);
        let second = engine.demand(&job);
        assert_eq!(*second.value, 42);
        assert_eq!(second.outcome, Outcome::MemoHit);
        assert_eq!(runs.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn durable_outputs_survive_into_a_new_engine() {
        let (dir, store) = tmp_store("durable");
        let runs = AtomicU64::new(0);
        {
            let engine = JobEngine::new(Some(&store));
            let r = engine.demand(&Doubler {
                input: 7,
                runs: &runs,
            });
            assert_eq!(r.outcome, Outcome::Executed);
        }
        let engine = JobEngine::new(Some(&store));
        let r = engine.demand(&Doubler {
            input: 7,
            runs: &runs,
        });
        assert_eq!(*r.value, 14);
        assert_eq!(r.outcome, Outcome::StoreHit, "second run decodes the store");
        assert_eq!(runs.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_store_entry_degrades_to_execution_and_heals() {
        let (dir, store) = tmp_store("corrupt");
        let runs = AtomicU64::new(0);
        let job = Doubler {
            input: 5,
            runs: &runs,
        };
        {
            let engine = JobEngine::new(Some(&store));
            engine.demand(&job);
        }
        let path = store.object_path(job.key());
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let engine = JobEngine::new(Some(&store));
        let r = engine.demand(&job);
        assert_eq!(*r.value, 10);
        assert_eq!(r.outcome, Outcome::Executed, "corruption re-executes");
        assert_eq!(runs.load(Ordering::Relaxed), 2);
        // The re-execution rewrote the entry.
        let engine = JobEngine::new(Some(&store));
        assert_eq!(engine.demand(&job).outcome, Outcome::StoreHit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn force_bypasses_memo_and_store_once() {
        let (dir, store) = tmp_store("force");
        let runs = AtomicU64::new(0);
        let job = Doubler {
            input: 9,
            runs: &runs,
        };
        let engine = JobEngine::new(Some(&store));
        engine.demand(&job);
        engine.force(job.key());
        let r = engine.demand(&job);
        assert_eq!(r.outcome, Outcome::Executed, "forced demand re-runs");
        assert_eq!(runs.load(Ordering::Relaxed), 2);
        // The force is consumed: the next demand memoizes again.
        assert_eq!(engine.demand(&job).outcome, Outcome::MemoHit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_recomputes_non_durable_and_redecodes_durable() {
        let (dir, store) = tmp_store("evict");
        let runs = AtomicU64::new(0);
        let job = Doubler {
            input: 3,
            runs: &runs,
        };
        let engine = JobEngine::new(Some(&store));
        engine.demand(&job);
        engine.evict([job.key()]);
        let r = engine.demand(&job);
        assert_eq!(r.outcome, Outcome::StoreHit, "durable output redecodes");
        assert_eq!(runs.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nested_demands_record_dependency_edges() {
        let runs = AtomicU64::new(0);
        let inner_runs = AtomicU64::new(0);
        let engine = JobEngine::new(None);
        let job = Chained {
            input: 10,
            runs: &runs,
            inner_runs: &inner_runs,
        };
        let r = engine.demand(&job);
        assert_eq!(*r.value, 21);
        let edges = engine.dep_edges();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].parent, None);
        assert_eq!(edges[0].child.0, JobKind::Score);
        assert_eq!(edges[1].parent, Some(edges[0].child));
        assert_eq!(edges[1].child.0, JobKind::Stats);
    }

    #[test]
    fn demands_record_per_key_costs_with_parents() {
        let runs = AtomicU64::new(0);
        let inner_runs = AtomicU64::new(0);
        let engine = JobEngine::new(None);
        let job = Chained {
            input: 777,
            runs: &runs,
            inner_runs: &inner_runs,
        };
        engine.demand(&job);
        engine.demand(&job); // memo hit
                             // The attribution log is process-global and shared with the other
                             // tests in this binary, so filter down to this job's unique keys.
        let outer = job.key().hex();
        let inner = Doubler {
            input: 777,
            runs: &inner_runs,
        }
        .key()
        .hex();
        let recs = attribution::snapshot();
        let exec = recs
            .iter()
            .find(|r| r.key == outer && r.outcome == CostOutcome::Executed)
            .expect("outer execution recorded");
        assert_eq!(exec.kind, "score");
        assert_eq!(exec.parent, None);
        let nested = recs
            .iter()
            .find(|r| r.key == inner)
            .expect("nested demand recorded");
        assert_eq!(nested.kind, "stats");
        assert_eq!(nested.parent, Some(("score", outer.clone())));
        assert!(
            exec.wall_ns >= nested.wall_ns,
            "parent wall ({}) includes the nested demand ({})",
            exec.wall_ns,
            nested.wall_ns
        );
        assert!(recs
            .iter()
            .any(|r| r.key == outer && r.outcome == CostOutcome::MemoHit));
    }

    #[test]
    fn store_hit_costs_carry_decoded_bytes() {
        let (dir, store) = tmp_store("cost-bytes");
        let runs = AtomicU64::new(0);
        let job = Doubler {
            input: 4242,
            runs: &runs,
        };
        {
            let engine = JobEngine::new(Some(&store));
            engine.demand(&job);
        }
        let engine = JobEngine::new(Some(&store));
        assert_eq!(engine.demand(&job).outcome, Outcome::StoreHit);
        let rec = attribution::snapshot()
            .into_iter()
            .find(|r| r.key == job.key().hex() && r.outcome == CostOutcome::StoreHit)
            .expect("store hit recorded");
        assert_eq!(rec.decoded_bytes, 8, "u64 payload is 8 bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn demand_par_preserves_order() {
        let runs = AtomicU64::new(0);
        let engine = JobEngine::new(None);
        let jobs: Vec<Doubler<'_>> = (0..32)
            .map(|i| Doubler {
                input: i,
                runs: &runs,
            })
            .collect();
        let results = engine.demand_par(&jobs);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r.value, (i as u64) * 2);
        }
        assert_eq!(runs.load(Ordering::Relaxed), 32);
    }
}
