//! One test per deduction rule of Tab. 2 — executable documentation of the
//! analysis semantics. Each test is a minimal program exercising exactly
//! one rule.

#![cfg(test)]

use crate::engine::{Pta, PtaOptions};
use crate::obj::ObjKind;
use crate::specdb::{Spec, SpecDb};
use uspec_lang::lower::{lower_program, LowerOptions};
use uspec_lang::parser::parse;
use uspec_lang::registry::ApiTable;
use uspec_lang::MethodId;

fn analyze(src: &str, specs: &SpecDb) -> Pta {
    let program = parse(src).unwrap();
    let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
        .unwrap()
        .pop()
        .unwrap();
    Pta::run(&body, specs, &PtaOptions::default())
}

fn ret_of<'p>(pta: &'p Pta, method: &str) -> &'p [crate::ObjId] {
    &pta.call_records()
        .find(|c| c.method.method.as_str() == method)
        .unwrap_or_else(|| panic!("no call to {method}"))
        .ret
}

fn recv_of<'p>(pta: &'p Pta, method: &str) -> &'p [crate::ObjId] {
    pta.call_records()
        .find(|c| c.method.method.as_str() == method)
        .and_then(|c| c.recv.as_deref())
        .unwrap_or_else(|| panic!("no receiver for {method}"))
}

/// Tab. 2, rule **Alloc**: `x = new T();  {o} ⊆ ρ(x)` with `o` fresh.
#[test]
fn rule_alloc() {
    let pta = analyze(
        r#"
        fn main() {
            x = new T();
            y = new T();
            x.observe();
            y.observe2();
        }
        "#,
        &SpecDb::empty(),
    );
    let x = recv_of(&pta, "observe");
    let y = recv_of(&pta, "observe2");
    assert_eq!(x.len(), 1);
    assert!(matches!(pta.objs.get(x[0]).kind, ObjKind::New { .. }));
    assert_ne!(x[0], y[0], "each allocation site is a distinct object");
}

/// Tab. 2, rule **Assign**: `x = y;  ρ(y) ⊆ ρ(x)`.
#[test]
fn rule_assign() {
    let pta = analyze(
        r#"
        fn main() {
            y = new T();
            x = y;
            x.observe();
            y.observe2();
        }
        "#,
        &SpecDb::empty(),
    );
    assert_eq!(recv_of(&pta, "observe"), recv_of(&pta, "observe2"));
}

/// Tab. 2, rule **FieldW** + **FieldR**:
/// `x.f = y  ⟹  ρ(y) ⊆ π(o, f)` and `x = y.f  ⟹  π(o, f) ⊆ ρ(x)`.
#[test]
fn rules_field_write_read() {
    let pta = analyze(
        r#"
        fn main() {
            b = new Box();
            v = new T();
            b.item = v;
            w = b.item;
            w.observe();
            v.observe2();
        }
        "#,
        &SpecDb::empty(),
    );
    assert_eq!(recv_of(&pta, "observe"), recv_of(&pta, "observe2"));
}

/// Tab. 2, rule **GhostW**: with `RetArg(get, put, 2)`, executing
/// `y.put(k, v)` makes `v ∈ π(o, (get, k))` for every receiver object `o`.
#[test]
fn rule_ghost_write() {
    let specs = SpecDb::from_specs([Spec::RetArg {
        target: MethodId::new("M", "get", 1),
        source: MethodId::new("M", "put", 2),
        x: 2,
    }]);
    let pta = analyze(
        r#"
        fn main() {
            m = new M();
            v = new T();
            m.put("k", v);
        }
        "#,
        &specs,
    );
    // The heap holds a ghost field on the map object containing v.
    let ghost_entries: Vec<_> = pta
        .heap
        .iter()
        .filter(|((_, f), _)| matches!(f, crate::FieldKey::Ghost(_)))
        .collect();
    assert_eq!(ghost_entries.len(), 1);
    let ((owner, _), pts) = ghost_entries[0];
    assert!(matches!(pta.objs.get(*owner).kind, ObjKind::New { .. }));
    assert_eq!(pts.len(), 1);
    assert!(matches!(
        pta.objs.get(pts.iter().next().copied().unwrap()).kind,
        ObjKind::New { .. }
    ));
}

/// Tab. 2, rule **GhostR**: `x = y.get(k)` reads `π(o, (get, k)) ⊆ ρ(x)`.
#[test]
fn rule_ghost_read() {
    let specs = SpecDb::from_specs([Spec::RetArg {
        target: MethodId::new("M", "get", 1),
        source: MethodId::new("M", "put", 2),
        x: 2,
    }]);
    let pta = analyze(
        r#"
        fn main() {
            m = new M();
            v = new T();
            m.put("k", v);
            x = m.get("k");
        }
        "#,
        &specs,
    );
    assert!(Pta::may_alias(ret_of(&pta, "get"), recv_of(&pta, "put")).eq(&false));
    let get_ret = ret_of(&pta, "get");
    let stored = &pta
        .call_records()
        .find(|c| c.method.method.as_str() == "put")
        .unwrap()
        .args[1];
    assert!(Pta::may_alias(get_ret, stored));
}

/// Tab. 2, GhostR footnote: "if π(o, f) = ∅, allocate an object
/// z ∈ π(o, f)" — so two matching reads return the same object.
#[test]
fn rule_ghost_read_allocates_z() {
    let specs = SpecDb::from_specs([Spec::RetSame {
        method: MethodId::new("M", "get", 1),
    }]);
    let pta = analyze(
        r#"
        fn main() {
            m = new M();
            a = m.get("k");
            b = m.get("k");
        }
        "#,
        &specs,
    );
    let recs: Vec<_> = pta
        .call_records()
        .filter(|c| c.method.method.as_str() == "get")
        .collect();
    assert_eq!(recs[0].ret, recs[1].ret, "both reads return the same z");
    assert!(matches!(
        pta.objs.get(recs[0].ret[0]).kind,
        ObjKind::Ghost { .. }
    ));
}

/// §3.2's starting assumption: API returns are fresh objects under the
/// empty spec database (the "API unaware" analysis).
#[test]
fn api_unaware_fresh_assumption() {
    let pta = analyze(
        r#"
        fn main(db) {
            a = db.get("k");
            b = db.get("k");
        }
        "#,
        &SpecDb::empty(),
    );
    let recs: Vec<_> = pta
        .call_records()
        .filter(|c| c.method.method.as_str() == "get")
        .collect();
    assert!(!Pta::may_alias(&recs[0].ret, &recs[1].ret));
    for r in recs {
        assert!(matches!(pta.objs.get(r.ret[0]).kind, ObjKind::ApiRet(_)));
    }
}
