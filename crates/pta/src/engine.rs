//! Points-to engine front door: result types, options and the shared
//! deduction-rule semantics.
//!
//! The analysis runs one acyclic [`Body`] at a time. Local variables `ρ`
//! are tracked flow-sensitively per basic block (strong updates on
//! assignment); the heap `π` is global and flow-insensitive, as in classic
//! Andersen analysis [Andersen 1994]. The deduction rules are exactly
//! Tab. 2 of the paper: Alloc, Assign, FieldW, FieldR plus the spec-driven
//! GhostW/GhostR rules, with the App. A ⊤/⊥ extension available behind
//! [`GhostMode::Coverage`].
//!
//! Two engines solve those rules to the same fixpoint:
//!
//! * [`EngineKind::Naive`] ([`naive`](crate::naive)) — the rule-by-rule
//!   reference implementation: full passes over every instruction until
//!   the heap stabilizes.
//! * [`EngineKind::Worklist`] ([`constraints`](crate::constraints) +
//!   [`solver`](crate::solver)) — the body is lowered once into a
//!   constraint IR and only constraints whose inputs changed are
//!   re-evaluated. Byte-identical results, far fewer rule evaluations.
//!
//! The call-rule semantics both engines share ([`eval_call`]) lives here so
//! the two implementations can only differ in *which* rules they evaluate
//! *when*, never in what a rule does.

use std::collections::BTreeSet;
use uspec_lang::mir::{Body, CallSite, Var};
use uspec_lang::registry::{MethodId, VarType};

use crate::heap::{FieldKey, GhostField, Heap};
use crate::obj::{AbsObj, ObjId, ObjKind, ObjPool, Value};
use crate::specdb::SpecDb;

/// A points-to set.
pub type PtsSet = BTreeSet<ObjId>;

/// Per-program-point variable environment `ρ`.
pub type Env = Vec<PtsSet>;

/// Whether the §6.4 / App. A coverage extension (⊤/⊥ ghost fields) is used.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GhostMode {
    /// Base semantics (Fig. 5): unknown argument values disable ghost
    /// reads/writes.
    #[default]
    Base,
    /// Coverage-increasing semantics (Fig. 9): unknown names fall back to
    /// the ⊤/⊥ fields.
    Coverage,
}

/// Which fixpoint engine solves the deduction rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Rule-by-rule reference implementation: repeated full passes over
    /// every instruction. Kept for differential testing and ablation.
    Naive,
    /// Constraint-IR worklist solver propagating points-to deltas.
    /// Produces byte-identical [`Pta`] results to [`EngineKind::Naive`].
    #[default]
    Worklist,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::Naive => write!(f, "naive"),
            EngineKind::Worklist => write!(f, "worklist"),
        }
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<EngineKind, String> {
        match s {
            "naive" => Ok(EngineKind::Naive),
            "worklist" => Ok(EngineKind::Worklist),
            other => Err(format!(
                "unknown engine '{other}' (expected 'naive' or 'worklist')"
            )),
        }
    }
}

/// Engine options.
#[derive(Clone, Debug)]
pub struct PtaOptions {
    /// Ghost-field handling mode.
    pub ghost_mode: GhostMode,
    /// Cap on the cross product of argument value sets used to build ghost
    /// field names.
    pub max_value_combos: usize,
    /// Safety bound on fixpoint passes (naive) / delta rounds (worklist).
    pub max_passes: usize,
    /// Flow-sensitive `ρ` with strong updates (the paper's configuration).
    /// When false, every assignment is a weak update and block order is
    /// ignored — classic flow-insensitive Andersen, kept as a
    /// precision-ablation mode. The worklist IR encodes the flow-sensitive
    /// kill structure, so this mode always runs on the naive engine.
    pub flow_sensitive: bool,
    /// Which fixpoint engine to use.
    pub engine: EngineKind,
}

impl Default for PtaOptions {
    fn default() -> PtaOptions {
        PtaOptions {
            ghost_mode: GhostMode::Base,
            max_value_combos: 16,
            max_passes: 64,
            flow_sensitive: true,
            engine: EngineKind::Worklist,
        }
    }
}

/// Convergence and effort statistics for one analysis run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PtaStats {
    /// The engine that actually solved the fixpoint (flow-insensitive runs
    /// always report [`EngineKind::Naive`]).
    pub engine: EngineKind,
    /// Fixpoint passes (naive) or delta rounds (worklist) until the heap
    /// stabilized or the `max_passes` cap was hit.
    pub passes: usize,
    /// Individual rule evaluations during solving; the final recording
    /// pass is not counted. This is the work metric the worklist engine
    /// minimizes — the naive engine re-evaluates every reachable
    /// instruction each pass.
    pub propagations: usize,
    /// Size of the lowered constraint IR (0 for the naive engine, which
    /// interprets the MIR directly).
    pub constraints: usize,
    /// Whether the heap truly stabilized. `false` means the `max_passes`
    /// cap truncated the fixpoint and the result is an under-approximation.
    pub converged: bool,
}

/// The result of one instruction, recorded during the final pass so that
/// downstream passes (event-graph construction, clients) can replay the
/// analysis without re-implementing the transfer functions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstrRecord {
    /// An allocation (`new`, literal, opaque).
    Alloc {
        /// Destination variable.
        dst: Var,
        /// The allocated abstract object.
        obj: ObjId,
    },
    /// An API call with its observed points-to sets.
    Call(CallRecord),
    /// Anything else.
    Other,
}

/// Observed points-to information at one API call instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallRecord {
    /// The call site `m`.
    pub site: CallSite,
    /// The method identifier `id(m)`.
    pub method: MethodId,
    /// Points-to set of the receiver (None for static calls).
    pub recv: Option<Vec<ObjId>>,
    /// Points-to sets of the arguments, 1-based positions.
    pub args: Vec<Vec<ObjId>>,
    /// Points-to set of the return value *after* the call.
    pub ret: Vec<ObjId>,
    /// Destination variable of the return value.
    pub dst: Option<Var>,
}

/// The converged analysis result for one body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pta {
    /// All abstract objects.
    pub objs: ObjPool,
    /// The converged heap `π`.
    pub heap: Heap,
    /// Per-block instruction records, aligned with `body.blocks[b].instrs`.
    /// Unreachable blocks have empty record vectors.
    pub records: Vec<Vec<InstrRecord>>,
    /// Entry environment of each reachable block.
    pub entry_envs: Vec<Option<Env>>,
    /// Solver statistics, including the real convergence verdict.
    pub stats: PtaStats,
}

impl Pta {
    /// Runs the analysis on a lowered body.
    ///
    /// With [`SpecDb::empty`] this is the paper's API-unaware baseline: API
    /// calls return fresh objects that alias nothing.
    pub fn run(body: &Body, specs: &SpecDb, opts: &PtaOptions) -> Pta {
        if !opts.flow_sensitive {
            // The flow-insensitive ablation (persistent weak-update env)
            // has no kill structure to exploit; it always runs naively.
            return crate::naive::solve(body, specs, opts);
        }
        match opts.engine {
            EngineKind::Naive => crate::naive::solve(body, specs, opts),
            EngineKind::Worklist => crate::solver::solve(body, specs, opts),
        }
    }

    /// May-alias check: non-empty intersection of points-to sets (§3.3).
    pub fn may_alias(a: &[ObjId], b: &[ObjId]) -> bool {
        // Both sides are sorted (they come from BTreeSets).
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// All call records in topological block order.
    pub fn call_records(&self) -> impl Iterator<Item = &CallRecord> {
        self.records.iter().flatten().filter_map(|r| match r {
            InstrRecord::Call(c) => Some(c),
            _ => None,
        })
    }
}

/// Interns the fresh abstract objects standing for the entry parameters, in
/// declaration order, returning `(param var, object)` pairs.
///
/// Both engines must call this before evaluating any instruction so that
/// parameter objects occupy the same low [`ObjId`]s — part of the
/// byte-identity contract between the engines.
pub(crate) fn intern_params(body: &Body, objs: &mut ObjPool) -> Vec<(Var, ObjId)> {
    body.params
        .iter()
        .zip(&body.param_types)
        .enumerate()
        .map(|(i, (&var, &ty))| {
            let class = match ty {
                VarType::Api(c) | VarType::User(c) => Some(c),
                _ => None,
            };
            let obj = objs.intern(AbsObj {
                site: CallSite {
                    node: uspec_lang::NodeId(u32::MAX - i as u32),
                    ctx: uspec_lang::mir::CtxId(0),
                },
                kind: ObjKind::Param {
                    index: i as u8,
                    class,
                },
            });
            (var, obj)
        })
        .collect()
}

/// Observer of the heap traffic of one rule evaluation. The worklist
/// solver uses it to maintain its dynamic `(obj, field) → constraint`
/// dependency edges; the naive engine plugs in the no-op [`NoTrace`].
pub(crate) trait HeapTrace {
    /// `π(obj, key)` was read (the slot may be absent — the dependency
    /// still matters: a later write creates it).
    fn read(&mut self, obj: ObjId, key: &FieldKey);
    /// `π(obj, key)` was written; `changed` says whether the slot grew.
    fn wrote(&mut self, obj: ObjId, key: &FieldKey, changed: bool);
}

/// [`HeapTrace`] that records nothing.
pub(crate) struct NoTrace;

impl HeapTrace for NoTrace {
    fn read(&mut self, _: ObjId, _: &FieldKey) {}
    fn wrote(&mut self, _: ObjId, _: &FieldKey, _: bool) {}
}

/// Applies the call rules of Tab. 2 — RetRecv, GhostW, GhostR and the
/// API-unaware fresh-object fallback — and returns the call's return set.
///
/// This is the shared semantic core: both engines evaluate every API call
/// through it, so they can only differ in evaluation *order*, never in
/// what a call does to the heap or the object pool.
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_call<T: HeapTrace>(
    objs: &mut ObjPool,
    heap: &mut Heap,
    specs: &SpecDb,
    opts: &PtaOptions,
    method: MethodId,
    site: CallSite,
    recv_pts: Option<&[ObjId]>,
    arg_pts: &[Vec<ObjId>],
    trace: &mut T,
) -> PtsSet {
    let mut ret = PtsSet::new();
    let mut read_applied = false;

    if let Some(rp) = recv_pts {
        // RetRecv extension: the call may return its receiver.
        if specs.has_ret_recv(method) {
            ret.extend(rp.iter().copied());
            read_applied = true;
        }

        // GhostW (Tab. 2): spec-driven writes into ghost fields.
        for &(target, x) in specs.ret_args_from(method) {
            let x = x as usize;
            if x == 0 || x > arg_pts.len() {
                continue;
            }
            let stored = &arg_pts[x - 1];
            if stored.is_empty() {
                continue;
            }
            let other_vals: Vec<Vec<Value>> = arg_pts
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != x - 1)
                .map(|(_, pts)| objs.values_of(pts))
                .collect();
            let combos = cross_product(&other_vals, opts.max_value_combos);
            let mut fields: Vec<GhostField> = combos
                .into_iter()
                .map(|vals| GhostField::Named(target, vals))
                .collect();
            if opts.ghost_mode == GhostMode::Coverage {
                if fields.is_empty() {
                    fields.push(GhostField::Top(target));
                }
                fields.push(GhostField::Bot(target));
            }
            for o in rp {
                for f in &fields {
                    let key = FieldKey::Ghost(f.clone());
                    let changed = heap.write(*o, key.clone(), stored.iter().copied());
                    trace.wrote(*o, &key, changed);
                }
            }
        }

        // GhostR (Tab. 2): spec-driven reads from ghost fields.
        if specs.has_ret_same(method) {
            let arg_vals: Vec<Vec<Value>> = arg_pts.iter().map(|pts| objs.values_of(pts)).collect();
            let combos = cross_product(&arg_vals, opts.max_value_combos);
            let mut fields: Vec<GhostField> = combos
                .into_iter()
                .map(|vals| GhostField::Named(method, vals))
                .collect();
            if opts.ghost_mode == GhostMode::Coverage {
                if fields.is_empty() {
                    // ⋆ case of Fig. 9: unknown name reads ⊥.
                    fields.push(GhostField::Bot(method));
                } else {
                    fields.push(GhostField::Top(method));
                }
            }
            if !fields.is_empty() {
                read_applied = true;
                for o in rp {
                    for f in &fields {
                        let key = FieldKey::Ghost(f.clone());
                        trace.read(*o, &key);
                        // Allocate z ∈ π(o, f) for empty fields so two
                        // matching reads alias; never for ⊤ (App. A).
                        if heap.is_empty_at(*o, &key) && !matches!(f, GhostField::Top(_)) {
                            let z = objs.intern(AbsObj {
                                site,
                                kind: ObjKind::Ghost {
                                    owner: *o,
                                    field: f.clone(),
                                },
                            });
                            let changed = heap.write(*o, key.clone(), [z]);
                            trace.wrote(*o, &key, changed);
                        }
                        if let Some(pts) = heap.read(*o, &key) {
                            ret.extend(pts.iter().copied());
                        }
                    }
                }
            }
        }
    }

    if !read_applied {
        // API-unaware default (§3.2): a fresh object per call site.
        let obj = objs.intern(AbsObj {
            site,
            kind: ObjKind::ApiRet(method),
        });
        ret.insert(obj);
    }

    ret
}

/// Cross product of value choices per position; empty if any position has
/// no values; truncated at `cap` combinations.
pub(crate) fn cross_product(positions: &[Vec<Value>], cap: usize) -> Vec<Vec<Value>> {
    if positions.iter().any(|p| p.is_empty()) {
        return Vec::new();
    }
    let mut acc: Vec<Vec<Value>> = vec![Vec::new()];
    for pos in positions {
        let mut next = Vec::new();
        for prefix in &acc {
            for v in pos {
                if next.len() >= cap {
                    break;
                }
                let mut combo = prefix.clone();
                combo.push(*v);
                next.push(combo);
            }
        }
        acc = next;
        if acc.len() >= cap {
            acc.truncate(cap);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specdb::Spec;
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;

    fn analyze(src: &str, specs: &SpecDb, opts: &PtaOptions) -> (Body, Pta) {
        let program = parse(src).unwrap();
        let bodies = lower_program(&program, &ApiTable::new(), &LowerOptions::default()).unwrap();
        let body = bodies.into_iter().next().unwrap();
        let pta = Pta::run(&body, specs, opts);
        (body, pta)
    }

    fn record_for<'p>(pta: &'p Pta, method: &str, occurrence: usize) -> &'p CallRecord {
        pta.call_records()
            .filter(|c| c.method.method.as_str() == method)
            .nth(occurrence)
            .unwrap_or_else(|| panic!("no call record #{occurrence} for {method}"))
    }

    fn hashmap_specs() -> SpecDb {
        // `new HashMap()` types the receiver as class `HashMap` even with an
        // empty ApiTable, so call sites get `HashMap.get/1` etc.
        let get = MethodId::new("HashMap", "get", 1);
        let put = MethodId::new("HashMap", "put", 2);
        SpecDb::from_specs([Spec::RetArg {
            target: get,
            source: put,
            x: 2,
        }])
    }

    const FIG2: &str = r#"
        fn main(someApi, db) {
            map = new HashMap();
            f = db.getFile("a");
            map.put("key", f);
            x = map.get("key");
            s = x.getName();
        }
    "#;

    #[test]
    fn baseline_api_returns_are_fresh() {
        let (_, pta) = analyze(FIG2, &SpecDb::empty(), &PtaOptions::default());
        let put = record_for(&pta, "put", 0);
        let get = record_for(&pta, "get", 0);
        // Under the API-unaware assumption, get's return does NOT alias the
        // object stored by put.
        assert!(!Pta::may_alias(&put.args[1], &get.ret));
        assert_eq!(get.ret.len(), 1);
        assert!(matches!(pta.objs.get(get.ret[0]).kind, ObjKind::ApiRet(_)));
    }

    #[test]
    fn ghost_fields_introduce_retarg_aliasing() {
        let (_, pta) = analyze(FIG2, &hashmap_specs(), &PtaOptions::default());
        let put = record_for(&pta, "put", 0);
        let get = record_for(&pta, "get", 0);
        assert!(
            Pta::may_alias(&put.args[1], &get.ret),
            "get(\"key\") must return the object stored by put(\"key\", f)"
        );
        // The returned object is the getFile result, not a fresh object.
        let get_file = record_for(&pta, "getFile", 0);
        assert!(Pta::may_alias(&get_file.ret, &get.ret));
    }

    #[test]
    fn different_keys_do_not_alias() {
        let src = r#"
            fn main(db) {
                map = new HashMap();
                map.put("k1", db.getFile("a"));
                x = map.get("k2");
                y = x.getName();
            }
        "#;
        let (_, pta) = analyze(src, &hashmap_specs(), &PtaOptions::default());
        let put = record_for(&pta, "put", 0);
        let get = record_for(&pta, "get", 0);
        assert!(
            !Pta::may_alias(&put.args[1], &get.ret),
            "different keys must stay separate"
        );
        // get("k2") still returns a ghost object (RetSame allocation).
        assert!(matches!(
            pta.objs.get(get.ret[0]).kind,
            ObjKind::Ghost { .. }
        ));
    }

    #[test]
    fn ret_same_reads_alias_each_other() {
        let src = r#"
            fn main(view) {
                a = view.findViewById(7);
                b = view.findViewById(7);
                c = view.findViewById(8);
            }
        "#;
        let find = MethodId::new("?", "findViewById", 1);
        let specs = SpecDb::from_specs([Spec::RetSame { method: find }]);
        let (_, pta) = analyze(src, &specs, &PtaOptions::default());
        let a = record_for(&pta, "findViewById", 0);
        let b = record_for(&pta, "findViewById", 1);
        let c = record_for(&pta, "findViewById", 2);
        assert!(Pta::may_alias(&a.ret, &b.ret), "same id aliases");
        assert!(!Pta::may_alias(&a.ret, &c.ret), "different id does not");
    }

    #[test]
    fn different_receivers_do_not_share_ghost_fields() {
        let src = r#"
            fn main(db) {
                m1 = new HashMap();
                m2 = new HashMap();
                m1.put("k", db.getFile("a"));
                x = m2.get("k");
            }
        "#;
        let (_, pta) = analyze(src, &hashmap_specs(), &PtaOptions::default());
        let put = record_for(&pta, "put", 0);
        let get = record_for(&pta, "get", 0);
        assert!(!Pta::may_alias(&put.args[1], &get.ret));
    }

    #[test]
    fn unknown_key_base_mode_misses_coverage_mode_hits() {
        // Fig. 6b: map.put("k", obj); map.get(api.foo()).
        let src = r#"
            fn main(api, db) {
                map = new HashMap();
                map.put("k", db.getFile("a"));
                x = map.get(api.foo());
                y = map.get("k");
            }
        "#;
        let specs = hashmap_specs();
        let (_, base) = analyze(src, &specs, &PtaOptions::default());
        let put = record_for(&base, "put", 0);
        let get_unknown = record_for(&base, "get", 0);
        assert!(
            !Pta::may_alias(&put.args[1], &get_unknown.ret),
            "base mode cannot resolve unknown keys"
        );

        let opts = PtaOptions {
            ghost_mode: GhostMode::Coverage,
            ..PtaOptions::default()
        };
        let (_, cov) = analyze(src, &specs, &opts);
        let put = record_for(&cov, "put", 0);
        let get_unknown = record_for(&cov, "get", 0);
        let get_known = record_for(&cov, "get", 1);
        assert!(
            Pta::may_alias(&put.args[1], &get_unknown.ret),
            "coverage mode reads ⊥ for unknown keys"
        );
        assert!(Pta::may_alias(&put.args[1], &get_known.ret));
    }

    #[test]
    fn coverage_mode_unknown_write_reaches_known_reads() {
        // Fig. 6a: map.put(api.foo(), obj); map.get("k1").
        let src = r#"
            fn main(api, db) {
                map = new HashMap();
                map.put(api.foo(), db.getFile("a"));
                x = map.get("k1");
                y = map.get("k2");
            }
        "#;
        let specs = hashmap_specs();
        let opts = PtaOptions {
            ghost_mode: GhostMode::Coverage,
            ..PtaOptions::default()
        };
        let (_, cov) = analyze(src, &specs, &opts);
        let put = record_for(&cov, "put", 0);
        let x = record_for(&cov, "get", 0);
        let y = record_for(&cov, "get", 1);
        assert!(
            Pta::may_alias(&put.args[1], &x.ret),
            "⊤ write reaches get(k1)"
        );
        assert!(
            Pta::may_alias(&put.args[1], &y.ret),
            "⊤ write reaches get(k2)"
        );
    }

    #[test]
    fn coverage_mode_no_put_keeps_reads_separate() {
        // App. A: without any write, the two reads of different unknown keys
        // must not alias through ⊤ (z is not allocated for ⊤).
        let src = r#"
            fn main(api) {
                map = new HashMap();
                x = map.get("k1");
                y = map.get("k2");
            }
        "#;
        let specs = hashmap_specs();
        let opts = PtaOptions {
            ghost_mode: GhostMode::Coverage,
            ..PtaOptions::default()
        };
        let (_, cov) = analyze(src, &specs, &opts);
        let x = record_for(&cov, "get", 0);
        let y = record_for(&cov, "get", 1);
        assert!(!Pta::may_alias(&x.ret, &y.ret));
    }

    #[test]
    fn field_store_load_flow() {
        let src = r#"
            class Box { fn noop(self) { return self; } }
            fn main(db) {
                b = new Box();
                b.item = db.getFile("a");
                x = b.item;
                y = x.getName();
            }
        "#;
        let (_, pta) = analyze(src, &SpecDb::empty(), &PtaOptions::default());
        let get_file = record_for(&pta, "getFile", 0);
        let get_name = record_for(&pta, "getName", 0);
        assert_eq!(get_name.recv.as_ref().unwrap(), &get_file.ret);
    }

    #[test]
    fn branches_join_points_to_sets() {
        let src = r#"
            fn main(c, db) {
                if (c) { x = db.getFile("a"); } else { x = db.getFile("b"); }
                y = x.getName();
            }
        "#;
        let (_, pta) = analyze(src, &SpecDb::empty(), &PtaOptions::default());
        let get_name = record_for(&pta, "getName", 0);
        assert_eq!(
            get_name.recv.as_ref().unwrap().len(),
            2,
            "receiver may be either branch's file"
        );
    }

    #[test]
    fn params_are_distinct_objects() {
        let (_, pta) = analyze(
            "fn main(a, b) { x = a.m(); y = b.m(); }",
            &SpecDb::empty(),
            &PtaOptions::default(),
        );
        let x = record_for(&pta, "m", 0);
        let y = record_for(&pta, "m", 1);
        assert!(!Pta::may_alias(
            x.recv.as_ref().unwrap(),
            y.recv.as_ref().unwrap()
        ));
    }

    #[test]
    fn analysis_terminates_on_loops() {
        let src = r#"
            fn main(db, c) {
                map = new HashMap();
                while (c) {
                    map.put("k", db.getFile("a"));
                    x = map.get("k");
                }
            }
        "#;
        let (_, pta) = analyze(src, &hashmap_specs(), &PtaOptions::default());
        assert!(pta.stats.passes < 10);
        assert!(pta.stats.converged);
    }

    #[test]
    fn ret_recv_returns_the_receiver() {
        let src = r#"
            fn main() {
                sb = new StringBuilder();
                b = sb.append("a");
                c = b.append("b");
            }
        "#;
        let specs = SpecDb::from_specs([Spec::RetRecv {
            method: MethodId::new("StringBuilder", "append", 1),
        }]);
        let (_, pta) = analyze(src, &specs, &PtaOptions::default());
        let first = record_for(&pta, "append", 0);
        let second = record_for(&pta, "append", 1);
        assert!(Pta::may_alias(first.recv.as_ref().unwrap(), &first.ret));
        // The chained receiver keeps pointing at the original builder (the
        // second call is on `b`, which now aliases `sb`).
        assert!(Pta::may_alias(
            first.recv.as_ref().unwrap(),
            second.recv.as_ref().unwrap()
        ));
    }

    #[test]
    fn cross_product_caps_and_handles_empty() {
        let v1 = vec![Value::from_literal(uspec_lang::Literal::Int(1))];
        let empty: Vec<Value> = vec![];
        assert!(cross_product(&[v1.clone(), empty], 16).is_empty());
        assert_eq!(cross_product(&[], 16), vec![Vec::<Value>::new()]);
        let many: Vec<Value> = (0..10)
            .map(|i| Value::from_literal(uspec_lang::Literal::Int(i)))
            .collect();
        let combos = cross_product(&[many.clone(), many], 16);
        assert!(combos.len() <= 16);
    }

    #[test]
    fn engine_kind_parses_and_displays() {
        assert_eq!("naive".parse::<EngineKind>().unwrap(), EngineKind::Naive);
        assert_eq!(
            "worklist".parse::<EngineKind>().unwrap(),
            EngineKind::Worklist
        );
        assert!("fast".parse::<EngineKind>().is_err());
        assert_eq!(EngineKind::Naive.to_string(), "naive");
        assert_eq!(EngineKind::Worklist.to_string(), "worklist");
        assert_eq!(EngineKind::default(), EngineKind::Worklist);
    }

    #[test]
    fn stats_report_the_engine_that_ran() {
        let (_, wl) = analyze(FIG2, &hashmap_specs(), &PtaOptions::default());
        assert_eq!(wl.stats.engine, EngineKind::Worklist);
        assert!(wl.stats.constraints > 0);
        assert!(wl.stats.converged);

        let naive_opts = PtaOptions {
            engine: EngineKind::Naive,
            ..PtaOptions::default()
        };
        let (_, nv) = analyze(FIG2, &hashmap_specs(), &naive_opts);
        assert_eq!(nv.stats.engine, EngineKind::Naive);
        assert_eq!(nv.stats.constraints, 0);
        assert!(nv.stats.propagations > 0);

        // Flow-insensitive mode always solves naively, whatever was asked.
        let fi_opts = PtaOptions {
            flow_sensitive: false,
            engine: EngineKind::Worklist,
            ..PtaOptions::default()
        };
        let (_, fi) = analyze(FIG2, &hashmap_specs(), &fi_opts);
        assert_eq!(fi.stats.engine, EngineKind::Naive);
    }
}

#[cfg(test)]
mod more_engine_tests {
    use super::*;
    use crate::specdb::Spec;
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;

    fn analyze(src: &str, specs: &SpecDb, opts: &PtaOptions) -> Pta {
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        Pta::run(&body, specs, opts)
    }

    fn rec<'p>(pta: &'p Pta, method: &str, n: usize) -> &'p CallRecord {
        pta.call_records()
            .filter(|c| c.method.method.as_str() == method)
            .nth(n)
            .unwrap_or_else(|| panic!("no record #{n} for {method}"))
    }

    #[test]
    fn multi_key_ghost_fields_distinguish_all_positions() {
        // SafeConfigParser-style set(s, o, v) / get(s, o): both key
        // positions must match.
        let get = MethodId::new("Cfg", "get", 2);
        let set = MethodId::new("Cfg", "set", 3);
        let specs = SpecDb::from_specs([Spec::RetArg {
            target: get,
            source: set,
            x: 3,
        }]);
        let pta = analyze(
            r#"
            fn main(db) {
                c = new Cfg();
                c.set("sec", "opt", db.make());
                a = c.get("sec", "opt");
                b = c.get("sec", "other");
                d = c.get("other", "opt");
            }
            "#,
            &specs,
            &PtaOptions::default(),
        );
        let stored = &rec(&pta, "set", 0).args[2];
        assert!(Pta::may_alias(stored, &rec(&pta, "get", 0).ret));
        assert!(!Pta::may_alias(stored, &rec(&pta, "get", 1).ret));
        assert!(!Pta::may_alias(stored, &rec(&pta, "get", 2).ret));
    }

    #[test]
    fn user_field_aliasing_across_branches() {
        let pta = analyze(
            r#"
            fn main(db, c) {
                box1 = new Box();
                if (c) { box1.item = db.a(); } else { box1.item = db.b(); }
                x = box1.item;
                x.use1();
            }
            "#,
            &SpecDb::empty(),
            &PtaOptions::default(),
        );
        let use1 = rec(&pta, "use1", 0);
        assert_eq!(
            use1.recv.as_ref().unwrap().len(),
            2,
            "field may hold either branch's object"
        );
    }

    #[test]
    fn bottom_field_reads_all_writes_in_coverage_mode() {
        let get = MethodId::new("M", "get", 1);
        let put = MethodId::new("M", "put", 2);
        let specs = SpecDb::from_specs([Spec::RetArg {
            target: get,
            source: put,
            x: 2,
        }]);
        let opts = PtaOptions {
            ghost_mode: GhostMode::Coverage,
            ..PtaOptions::default()
        };
        let pta = analyze(
            r#"
            fn main(db, api) {
                m = new M();
                m.put("k1", db.a());
                m.put("k2", db.b());
                x = m.get(api.unknownKey());
            }
            "#,
            &specs,
            &opts,
        );
        let a = &rec(&pta, "a", 0).ret;
        let b = &rec(&pta, "b", 0).ret;
        let x = &rec(&pta, "get", 0).ret;
        assert!(Pta::may_alias(a, x), "⊥ read sees the k1 write");
        assert!(Pta::may_alias(b, x), "⊥ read sees the k2 write");
    }

    #[test]
    fn records_align_with_instructions() {
        let pta = analyze(
            r#"
            fn main(db, c) {
                if (c) { x = db.a(); } else { y = db.b(); }
                z = db.c();
            }
            "#,
            &SpecDb::empty(),
            &PtaOptions::default(),
        );
        assert_eq!(pta.call_records().count(), 3);
        // Every record's ret set is sorted (may_alias relies on it).
        for r in pta.call_records() {
            let mut sorted = r.ret.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, r.ret);
        }
    }

    #[test]
    fn max_passes_is_respected_and_reported() {
        let get = MethodId::new("M", "get", 1);
        let put = MethodId::new("M", "put", 2);
        let specs = SpecDb::from_specs([Spec::RetArg {
            target: get,
            source: put,
            x: 2,
        }]);
        // The read precedes the write, so the fact flows backwards through
        // the heap: neither engine can settle in a single pass/round.
        let src = r#"
            fn main(db) {
                m = new M();
                x = m.get("k");
                m.put("k", db.a());
            }
        "#;
        for engine in [EngineKind::Naive, EngineKind::Worklist] {
            let opts = PtaOptions {
                max_passes: 1,
                engine,
                ..PtaOptions::default()
            };
            let pta = analyze(src, &specs, &opts);
            assert!(pta.stats.passes <= 1);
            assert!(
                !pta.stats.converged,
                "{engine}: one pass cannot settle the put-before-get heap"
            );
        }
    }

    #[test]
    fn static_calls_have_no_ghost_interactions() {
        let connect = MethodId::new("DB", "connect", 1);
        let specs = SpecDb::from_specs([Spec::RetSame { method: connect }]);
        let pta = analyze(
            r#"
            fn main() {
                a = DB.connect("dsn");
                b = DB.connect("dsn");
            }
            "#,
            &specs,
            &PtaOptions::default(),
        );
        // No receiver → RetSame cannot apply; both returns stay fresh.
        let a = &rec(&pta, "connect", 0).ret;
        let b = &rec(&pta, "connect", 1).ret;
        assert!(!Pta::may_alias(a, b));
    }
}

#[cfg(test)]
mod flow_insensitive_tests {
    use super::*;
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;

    fn analyze_fi(src: &str, flow_sensitive: bool) -> Pta {
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let opts = PtaOptions {
            flow_sensitive,
            ..PtaOptions::default()
        };
        Pta::run(&body, &SpecDb::empty(), &opts)
    }

    fn recv_of<'p>(pta: &'p Pta, method: &str) -> &'p [ObjId] {
        pta.call_records()
            .find(|c| c.method.method.as_str() == method)
            .and_then(|c| c.recv.as_deref())
            .unwrap_or_else(|| panic!("no receiver for {method}"))
    }

    const REASSIGN: &str = r#"
        fn main() {
            x = new A();
            x = new B();
            x.use1();
        }
    "#;

    #[test]
    fn strong_updates_kill_old_values() {
        let pta = analyze_fi(REASSIGN, true);
        assert_eq!(recv_of(&pta, "use1").len(), 1, "only the B object");
    }

    #[test]
    fn weak_updates_accumulate() {
        let pta = analyze_fi(REASSIGN, false);
        assert_eq!(
            recv_of(&pta, "use1").len(),
            2,
            "flow-insensitive ρ keeps both allocations"
        );
    }

    #[test]
    fn flow_insensitive_sees_later_assignments_earlier() {
        // In FI mode the use *before* the assignment still observes it.
        let src = r#"
            fn main() {
                y = new A();
                y.use1();
                y = new B();
            }
        "#;
        let fs = analyze_fi(src, true);
        let fi = analyze_fi(src, false);
        assert_eq!(recv_of(&fs, "use1").len(), 1);
        assert_eq!(recv_of(&fi, "use1").len(), 2);
    }

    #[test]
    fn flow_insensitive_is_a_superset_of_flow_sensitive() {
        let src = r#"
            fn main(db, c) {
                m = new Map();
                if (c) { v = db.a(); } else { v = db.b(); }
                m.put("k", v);
                v.use1();
            }
        "#;
        let fs = analyze_fi(src, true);
        let fi = analyze_fi(src, false);
        for (a, b) in fs.call_records().zip(fi.call_records()) {
            assert_eq!(a.method, b.method);
            assert!(a.args.len() == b.args.len());
            // Every flow-sensitive receiver object's stable identity also
            // appears flow-insensitively (compare by count here; identity
            // comparison lives in the core eval tests).
            if let (Some(ra), Some(rb)) = (&a.recv, &b.recv) {
                assert!(rb.len() >= ra.len());
            }
        }
    }
}
