//! The constraint IR: a one-time lowering of a MIR body into sparse
//! points-to constraints with static use-def edges.
//!
//! Bodies are acyclic with forward-only edges and the flow-sensitive
//! environment performs strong updates, so the set a use observes is
//! exactly the union over its *reaching definitions* — a property of the
//! CFG alone, independent of any points-to facts. [`ConstraintGraph::build`]
//! computes those reaching-def lists by symbolically replaying the naive
//! engine's block walk over definition ids instead of points-to sets:
//! blocks in index order, strong updates kill the def list, block joins
//! union them. Unreachable blocks contribute no constraints, mirroring the
//! naive engine, which never visits them.
//!
//! What remains dynamic at solve time is only the heap: which `(obj,
//! field)` keys a Load or Call touches depends on points-to facts, so
//! those dependency edges are discovered during evaluation (see
//! [`solver`](crate::solver)) rather than lowered here. Ghost constraints
//! are in this sense materialized dynamically — a GhostW/GhostR edge
//! exists per `(obj, ghost-field)` key the call actually reaches.

use uspec_lang::mir::{Body, CallSite, Instr, Literal, Terminator};
use uspec_lang::registry::MethodId;
use uspec_lang::Symbol;

/// Index of a definition: `0..num_params` are the parameter seeds, the
/// rest are instruction destinations in program order.
pub(crate) type DefId = u32;

/// Index of a constraint, in program order. Program order doubles as the
/// solver's sweep order, which is what aligns worklist rounds with naive
/// passes.
pub(crate) type Cid = u32;

/// What an allocation constraint allocates.
#[derive(Debug)]
pub(crate) enum AllocWhat {
    /// `new C()`.
    New {
        /// Allocated class.
        class: Symbol,
        /// Whether it is user-defined.
        user: bool,
    },
    /// A literal construction.
    Lit(Literal),
    /// An unresolved operation.
    Opaque,
}

/// The rule a constraint applies (the Tab. 2 rule name in brackets).
#[derive(Debug)]
pub(crate) enum CKind {
    /// [Alloc] `dst = fresh object at site`.
    Alloc {
        /// What is allocated.
        what: AllocWhat,
        /// The allocation site.
        site: CallSite,
    },
    /// [Assign] `dst = union of slot 0`.
    Copy,
    /// [FieldR] `dst = π(o, field)` for each `o` in slot 0.
    Load {
        /// The real field name.
        field: Symbol,
    },
    /// [FieldW] `π(o, field) ∪= slot 1` for each `o` in slot 0.
    Store {
        /// The real field name.
        field: Symbol,
    },
    /// `dst = ∅` (untracked booleans from Cmp/Not).
    Untracked,
    /// [GhostW]/[GhostR]/fallback: an API call. Slot 0 is the receiver
    /// when `has_recv`; remaining slots are the 1-based arguments.
    Call {
        /// The method identifier.
        method: MethodId,
        /// The call site.
        site: CallSite,
        /// Whether slot 0 is the receiver.
        has_recv: bool,
    },
}

/// One lowered constraint.
#[derive(Debug)]
pub(crate) struct Constraint {
    /// The rule.
    pub kind: CKind,
    /// The definition this constraint produces, if any.
    pub dst: Option<DefId>,
    /// Operand slots; each slot is the sorted list of definitions reaching
    /// that use.
    pub ins: Vec<Vec<DefId>>,
}

/// The lowered body: constraints in program order plus the def→reader
/// index the solver propagates deltas along.
#[derive(Debug)]
pub(crate) struct ConstraintGraph {
    /// Number of parameter definitions (def ids `0..num_params`).
    pub num_params: usize,
    /// Total number of definitions.
    pub num_defs: usize,
    /// Constraints in program order.
    pub constraints: Vec<Constraint>,
    /// For each def, the constraints reading it (ascending, deduped).
    pub readers: Vec<Vec<Cid>>,
}

impl ConstraintGraph {
    /// Lowers a body. Only reachable blocks contribute constraints.
    pub(crate) fn build(body: &Body) -> ConstraintGraph {
        let nvars = body.num_vars();
        let nparams = body.params.len();
        let mut num_defs = nparams as u32;
        let mut constraints: Vec<Constraint> = Vec::new();

        // Reaching definitions per variable, propagated exactly like the
        // naive engine propagates points-to environments.
        type DefEnv = Vec<Vec<DefId>>;
        let mut entry: Vec<Option<DefEnv>> = vec![None; body.blocks.len()];
        let mut init: DefEnv = vec![Vec::new(); nvars];
        for (i, &var) in body.params.iter().enumerate() {
            init[var.0 as usize] = vec![i as DefId];
        }
        entry[0] = Some(init);

        for bb in 0..body.blocks.len() {
            let Some(mut env) = entry[bb].take() else {
                continue;
            };
            for instr in &body.blocks[bb].instrs {
                let (kind, ins) = match instr {
                    Instr::New {
                        class,
                        site,
                        user_class,
                        ..
                    } => (
                        CKind::Alloc {
                            what: AllocWhat::New {
                                class: *class,
                                user: *user_class,
                            },
                            site: *site,
                        },
                        Vec::new(),
                    ),
                    Instr::Lit { value, site, .. } => (
                        CKind::Alloc {
                            what: AllocWhat::Lit(*value),
                            site: *site,
                        },
                        Vec::new(),
                    ),
                    Instr::Opaque { site, .. } => (
                        CKind::Alloc {
                            what: AllocWhat::Opaque,
                            site: *site,
                        },
                        Vec::new(),
                    ),
                    Instr::Copy { src, .. } => (CKind::Copy, vec![env[src.0 as usize].clone()]),
                    Instr::FieldLoad { obj, field, .. } => (
                        CKind::Load { field: *field },
                        vec![env[obj.0 as usize].clone()],
                    ),
                    Instr::FieldStore { obj, field, src } => (
                        CKind::Store { field: *field },
                        vec![env[obj.0 as usize].clone(), env[src.0 as usize].clone()],
                    ),
                    Instr::Cmp { .. } | Instr::Not { .. } => (CKind::Untracked, Vec::new()),
                    Instr::CallApi {
                        method,
                        recv,
                        args,
                        site,
                        ..
                    } => {
                        let mut ins: Vec<Vec<DefId>> = Vec::with_capacity(args.len() + 1);
                        if let Some(r) = recv {
                            ins.push(env[r.0 as usize].clone());
                        }
                        for a in args {
                            ins.push(env[a.0 as usize].clone());
                        }
                        (
                            CKind::Call {
                                method: *method,
                                site: *site,
                                has_recv: recv.is_some(),
                            },
                            ins,
                        )
                    }
                };
                // Strong update: the destination's reaching defs collapse
                // to this one (inputs were snapshotted above, so `x = x.m()`
                // still reads the old defs of `x`).
                let dst = instr.def().map(|v| {
                    let d = num_defs;
                    num_defs += 1;
                    env[v.0 as usize] = vec![d];
                    d
                });
                constraints.push(Constraint { kind, dst, ins });
            }
            let succs: Vec<u32> = match &body.blocks[bb].term {
                Terminator::Goto(t) => vec![t.0],
                Terminator::Branch {
                    then_bb, else_bb, ..
                } => vec![then_bb.0, else_bb.0],
                Terminator::Return => vec![],
            };
            for s in succs {
                match &mut entry[s as usize] {
                    Some(dest) => {
                        for (d, src) in dest.iter_mut().zip(&env) {
                            merge_defs(d, src);
                        }
                    }
                    slot @ None => *slot = Some(env.clone()),
                }
            }
        }

        let mut readers: Vec<Vec<Cid>> = vec![Vec::new(); num_defs as usize];
        for (cid, c) in constraints.iter().enumerate() {
            for slot in &c.ins {
                for &d in slot {
                    let r = &mut readers[d as usize];
                    if r.last() != Some(&(cid as Cid)) {
                        r.push(cid as Cid);
                    }
                }
            }
        }

        ConstraintGraph {
            num_params: nparams,
            num_defs: num_defs as usize,
            constraints,
            readers,
        }
    }
}

/// Unions sorted def list `src` into sorted def list `dst`.
fn merge_defs(dst: &mut Vec<DefId>, src: &[DefId]) {
    if src.is_empty() {
        return;
    }
    if dst.is_empty() {
        dst.extend_from_slice(src);
        return;
    }
    let mut merged = Vec::with_capacity(dst.len() + src.len());
    let (mut i, mut j) = (0, 0);
    while i < dst.len() && j < src.len() {
        match dst[i].cmp(&src[j]) {
            std::cmp::Ordering::Less => {
                merged.push(dst[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(src[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push(dst[i]);
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&dst[i..]);
    merged.extend_from_slice(&src[j..]);
    *dst = merged;
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;

    fn build(src: &str) -> ConstraintGraph {
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        ConstraintGraph::build(&body)
    }

    #[test]
    fn straight_line_defs_chain_forward() {
        let cg = build("fn main(db) { x = db.a(); y = x.b(); }");
        assert_eq!(cg.num_params, 1);
        // Two calls, each defining one value.
        let calls: Vec<&Constraint> = cg
            .constraints
            .iter()
            .filter(|c| matches!(c.kind, CKind::Call { .. }))
            .collect();
        assert_eq!(calls.len(), 2);
        // The second call's receiver is a single def (possibly a Copy of
        // the first call's result — lowering may insert temporaries).
        assert_eq!(calls[1].ins[0].len(), 1);
        // Def-flow edges are strictly forward: a constraint only reads
        // defs produced by earlier constraints (or parameters).
        for (cid, c) in cg.constraints.iter().enumerate() {
            for slot in &c.ins {
                for &d in slot {
                    assert!(
                        (d as usize) < cg.num_params
                            || cg.constraints[..cid].iter().any(|p| p.dst == Some(d)),
                        "constraint {cid} reads def {d} from the future"
                    );
                }
            }
        }
    }

    #[test]
    fn strong_updates_kill_reaching_defs() {
        let cg = build("fn main() { x = new A(); x = new B(); x.use1(); }");
        let call = cg
            .constraints
            .iter()
            .find(|c| matches!(c.kind, CKind::Call { .. }))
            .unwrap();
        // Only the B allocation reaches the call.
        assert_eq!(call.ins[0].len(), 1, "strong update killed the A def");
    }

    #[test]
    fn branch_joins_union_reaching_defs() {
        let cg =
            build("fn main(db, c) { if (c) { x = db.a(); } else { x = db.b(); } y = x.use1(); }");
        let last_call = cg
            .constraints
            .iter()
            .rev()
            .find(|c| matches!(c.kind, CKind::Call { .. }))
            .unwrap();
        assert_eq!(last_call.ins[0].len(), 2, "both branch defs reach the join");
    }

    #[test]
    fn readers_index_is_sorted_and_complete() {
        let cg = build("fn main(db, c) { x = db.a(); if (c) { y = x.b(); } z = x.d(); }");
        for (d, rs) in cg.readers.iter().enumerate() {
            assert!(rs.windows(2).all(|w| w[0] < w[1]), "readers sorted");
            for &cid in rs {
                assert!(cg.constraints[cid as usize]
                    .ins
                    .iter()
                    .any(|slot| slot.contains(&(d as DefId))));
            }
        }
        // Every use is indexed.
        for (cid, c) in cg.constraints.iter().enumerate() {
            for slot in &c.ins {
                for &d in slot {
                    assert!(cg.readers[d as usize].contains(&(cid as Cid)));
                }
            }
        }
    }

    #[test]
    fn merge_defs_unions_sorted_lists() {
        let mut a = vec![1, 3, 5];
        merge_defs(&mut a, &[2, 3, 6]);
        assert_eq!(a, vec![1, 2, 3, 5, 6]);
        let mut b: Vec<DefId> = vec![];
        merge_defs(&mut b, &[4]);
        assert_eq!(b, vec![4]);
        merge_defs(&mut b, &[]);
        assert_eq!(b, vec![4]);
    }
}
