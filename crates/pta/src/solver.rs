//! Worklist solver: delta propagation over the constraint IR.
//!
//! The solver keeps one points-to set per definition and re-evaluates a
//! constraint only when one of its inputs changed — an input being either
//! a definition it reads (static edges from the
//! [`ConstraintGraph`]) or a heap key `(obj, field)` it read during an
//! earlier evaluation (dynamic edges registered through
//! [`HeapTrace`]). All rule semantics go through the shared
//! [`eval_call`] / heap code, so the solver and the naive engine can only
//! differ in *which* evaluations they perform.
//!
//! # Why results are byte-identical to the naive engine
//!
//! Identity of the result — including [`ObjId`] numbering, which depends
//! on interning *order* — follows from round/pass alignment:
//!
//! * Round 0 evaluates **all** constraints in program order, exactly the
//!   instruction order of the naive engine's first pass (parameters are
//!   interned first by both, unreachable blocks are skipped by both), so
//!   both engines intern the same objects in the same order.
//! * Each later round sweeps the dirtied constraints in program order.
//!   Dirt raised at a constraint *later* in the current sweep joins the
//!   current round (the naive pass would also see that change later in
//!   the same pass, since def flow is forward); dirt at or before the
//!   sweep position waits for the next round (the naive engine would see
//!   it next pass). By induction, solver state after round *k* equals
//!   naive state after pass *k+1* — the constraints the solver skips are
//!   those whose inputs did not change, for which re-evaluation is a
//!   no-op (interning and heap unions are idempotent).
//! * Rounds are capped at `max_passes` like naive passes, so even
//!   truncated (non-converged) runs line up, and the final recording
//!   pass is literally the naive engine's, resumed on the solver's
//!   converged `(objs, heap)` state.
//!
//! Change detection uses full set equality, not growth: the
//! `max_value_combos` truncation in ghost-field construction makes call
//! transfer non-monotone, so a set can change without growing.

use std::collections::HashMap;

use uspec_lang::mir::Body;

use crate::constraints::{AllocWhat, CKind, Cid, ConstraintGraph, DefId};
use crate::engine::{
    eval_call, intern_params, EngineKind, HeapTrace, Pta, PtaOptions, PtaStats, PtsSet,
};
use crate::heap::{FieldKey, Heap};
use crate::naive;
use crate::obj::{AbsObj, ObjId, ObjKind, ObjPool};
use crate::specdb::SpecDb;

/// Runs the worklist engine and records the result via the shared naive
/// recording pass.
pub(crate) fn solve(body: &Body, specs: &SpecDb, opts: &PtaOptions) -> Pta {
    debug_assert!(
        opts.flow_sensitive,
        "worklist solver is flow-sensitive only"
    );
    let cg = {
        let _span = uspec_telemetry::span!("pta.lower", "fn={}", body.func);
        ConstraintGraph::build(body)
    };
    let mut objs = ObjPool::new();
    let mut sets: Vec<PtsSet> = vec![PtsSet::new(); cg.num_defs];
    let params = intern_params(body, &mut objs);
    debug_assert_eq!(params.len(), cg.num_params);
    for (i, (_, obj)) in params.into_iter().enumerate() {
        sets[i].insert(obj);
    }
    let mut solver = Solver {
        specs,
        opts,
        cg: &cg,
        objs,
        heap: Heap::new(),
        sets,
        key_readers: HashMap::new(),
        scratch: Vec::new(),
        evals: 0,
    };
    let (passes, converged) = {
        let _span = uspec_telemetry::span!("pta.propagate", "fn={}", body.func);
        solver.run()
    };
    let stats = PtaStats {
        engine: EngineKind::Worklist,
        passes,
        propagations: solver.evals,
        constraints: cg.constraints.len(),
        converged,
    };
    naive::record(
        naive::Engine::resume(body, specs, opts, solver.objs, solver.heap),
        stats,
    )
}

struct Solver<'a> {
    specs: &'a SpecDb,
    opts: &'a PtaOptions,
    cg: &'a ConstraintGraph,
    objs: ObjPool,
    heap: Heap,
    /// Points-to set of each definition.
    sets: Vec<PtsSet>,
    /// Dynamic heap dependencies: key → constraints that read it.
    key_readers: HashMap<(ObjId, FieldKey), Vec<Cid>>,
    /// Reusable buffer of keys changed by one evaluation.
    scratch: Vec<(ObjId, FieldKey)>,
    evals: usize,
}

/// Registers heap reads as dynamic dependencies and collects changed
/// writes, on behalf of the constraint currently being evaluated.
struct SolverTrace<'m> {
    readers: &'m mut HashMap<(ObjId, FieldKey), Vec<Cid>>,
    changed: &'m mut Vec<(ObjId, FieldKey)>,
    cid: Cid,
}

impl HeapTrace for SolverTrace<'_> {
    fn read(&mut self, obj: ObjId, key: &FieldKey) {
        let deps = self.readers.entry((obj, key.clone())).or_default();
        if !deps.contains(&self.cid) {
            deps.push(self.cid);
        }
    }

    fn wrote(&mut self, obj: ObjId, key: &FieldKey, changed: bool) {
        if changed {
            self.changed.push((obj, key.clone()));
        }
    }
}

impl Solver<'_> {
    /// Runs rounds until no constraint is dirty or the round cap is hit.
    /// Returns `(rounds, converged)`.
    fn run(&mut self) -> (usize, bool) {
        let n = self.cg.constraints.len();
        // Dirty bitmaps for the current and next round; round 0 evaluates
        // everything in program order, replicating the naive first pass.
        let mut in_cur = vec![true; n];
        let mut in_next = vec![false; n];
        let mut passes = 0;
        loop {
            passes += 1;
            for cid in 0..n {
                if in_cur[cid] {
                    in_cur[cid] = false;
                    self.eval(cid as Cid, &mut in_cur, &mut in_next);
                }
            }
            if !in_next.iter().any(|&d| d) {
                return (passes, true);
            }
            if passes >= self.opts.max_passes {
                return (passes, false);
            }
            // `in_cur` was fully cleared during the sweep; reuse it as the
            // next round's (empty) next-bitmap.
            std::mem::swap(&mut in_cur, &mut in_next);
        }
    }

    /// Evaluates one constraint, updating its def and dirtying readers of
    /// anything that changed.
    fn eval(&mut self, cid: Cid, in_cur: &mut [bool], in_next: &mut [bool]) {
        self.evals += 1;
        let c = &self.cg.constraints[cid as usize];
        let mut changed_keys = std::mem::take(&mut self.scratch);
        let out: Option<PtsSet> = match &c.kind {
            CKind::Alloc { what, site } => {
                let kind = match what {
                    AllocWhat::New { class, user } => ObjKind::New {
                        class: *class,
                        user: *user,
                    },
                    AllocWhat::Lit(l) => ObjKind::Lit(*l),
                    AllocWhat::Opaque => ObjKind::Opaque,
                };
                let obj = self.objs.intern(AbsObj { site: *site, kind });
                Some(PtsSet::from([obj]))
            }
            CKind::Untracked => Some(PtsSet::new()),
            CKind::Copy => Some(self.union_of(&c.ins[0])),
            CKind::Load { field } => {
                let base = self.union_of(&c.ins[0]);
                let key = FieldKey::Real(*field);
                let mut out = PtsSet::new();
                for &o in &base {
                    // Register the dependency even when the slot is absent:
                    // a later write must re-trigger this load.
                    let deps = self.key_readers.entry((o, key.clone())).or_default();
                    if !deps.contains(&cid) {
                        deps.push(cid);
                    }
                    if let Some(pts) = self.heap.read(o, &key) {
                        out.extend(pts.iter().copied());
                    }
                }
                Some(out)
            }
            CKind::Store { field } => {
                let base = self.union_of(&c.ins[0]);
                let vals: Vec<ObjId> = self.vec_of(&c.ins[1]);
                let key = FieldKey::Real(*field);
                for &o in &base {
                    if self.heap.write(o, key.clone(), vals.iter().copied()) {
                        changed_keys.push((o, key.clone()));
                    }
                }
                None
            }
            CKind::Call {
                method,
                site,
                has_recv,
            } => {
                let (recv_slot, arg_slots) = if *has_recv {
                    (Some(&c.ins[0]), &c.ins[1..])
                } else {
                    (None, &c.ins[..])
                };
                let recv_pts: Option<Vec<ObjId>> = recv_slot.map(|s| self.vec_of(s));
                let arg_pts: Vec<Vec<ObjId>> = arg_slots.iter().map(|s| self.vec_of(s)).collect();
                let mut trace = SolverTrace {
                    readers: &mut self.key_readers,
                    changed: &mut changed_keys,
                    cid,
                };
                Some(eval_call(
                    &mut self.objs,
                    &mut self.heap,
                    self.specs,
                    self.opts,
                    *method,
                    *site,
                    recv_pts.as_deref(),
                    &arg_pts,
                    &mut trace,
                ))
            }
        };

        if let (Some(d), Some(out)) = (c.dst, out) {
            let slot = &mut self.sets[d as usize];
            // Full equality, not growth: truncated ghost-name cross
            // products make call transfers non-monotone.
            if *slot != out {
                *slot = out;
                for &r in &self.cg.readers[d as usize] {
                    mark(r, cid, in_cur, in_next);
                }
            }
        }

        for (o, key) in changed_keys.drain(..) {
            if let Some(rs) = self.key_readers.get(&(o, key)) {
                for &r in rs {
                    if r != cid {
                        mark(r, cid, in_cur, in_next);
                    }
                }
            }
        }
        self.scratch = changed_keys;
    }

    /// Union of the points-to sets of a def slot, as a sorted `Vec` —
    /// skips the intermediate set for the common single-def case (each
    /// per-def set is already sorted and deduplicated).
    fn vec_of(&self, defs: &[DefId]) -> Vec<ObjId> {
        match defs {
            [] => Vec::new(),
            [d] => self.sets[*d as usize].iter().copied().collect(),
            many => {
                let mut out = PtsSet::new();
                for &d in many {
                    out.extend(self.sets[d as usize].iter().copied());
                }
                out.into_iter().collect()
            }
        }
    }

    /// Union of the points-to sets of a def slot.
    fn union_of(&self, defs: &[DefId]) -> PtsSet {
        match defs {
            [] => PtsSet::new(),
            [d] => self.sets[*d as usize].clone(),
            many => {
                let mut out = PtsSet::new();
                for &d in many {
                    out.extend(self.sets[d as usize].iter().copied());
                }
                out
            }
        }
    }
}

/// Dirties constraint `r`: into the current round if the sweep has not
/// reached it yet (the naive pass would see the change within the same
/// pass), otherwise into the next round.
fn mark(r: Cid, cid: Cid, in_cur: &mut [bool], in_next: &mut [bool]) {
    if r > cid {
        in_cur[r as usize] = true;
    } else {
        in_next[r as usize] = true;
    }
}
