//! Differential tests pinning the worklist solver to the naive engine.
//!
//! The worklist engine's contract is *byte-identical* [`Pta`] results —
//! same object pool (including [`crate::ObjId`] numbering), same heap,
//! same records, same entry environments — on every body, spec database,
//! ghost mode and pass cap. These tests enforce that contract over
//! proptest-randomized program templates; the corpus-wide differential
//! run lives in `crates/clients/tests/engine_differential.rs` (the
//! corpus generator dev-depends on this crate, which would alias the
//! `Spec` type here).
//!
//! Stats are intentionally *not* compared: the engines measure different
//! work. The only verdict relationship checked is that the solver never
//! claims non-convergence where the naive engine converged — the naive
//! engine needs one extra (no-op) pass to *observe* a fixpoint, so at an
//! exactly-tight `max_passes` cap it may conservatively report `false`
//! where the solver proves `true`.

#![cfg(test)]

use proptest::prelude::*;
use uspec_lang::lower::{lower_program, LowerOptions};
use uspec_lang::mir::Body;
use uspec_lang::parser::parse;
use uspec_lang::registry::{ApiTable, MethodId};

use crate::engine::{EngineKind, GhostMode, Pta, PtaOptions};
use crate::specdb::{Spec, SpecDb};

/// Runs both engines and asserts the results are byte-identical.
fn assert_engines_agree(body: &Body, specs: &SpecDb, opts: &PtaOptions, ctx: &str) {
    let naive = Pta::run(
        body,
        specs,
        &PtaOptions {
            engine: EngineKind::Naive,
            ..opts.clone()
        },
    );
    let wl = Pta::run(
        body,
        specs,
        &PtaOptions {
            engine: EngineKind::Worklist,
            ..opts.clone()
        },
    );
    assert_eq!(naive.objs, wl.objs, "{ctx}: object pools differ");
    assert_eq!(naive.heap, wl.heap, "{ctx}: heaps differ");
    assert_eq!(naive.records, wl.records, "{ctx}: records differ");
    assert_eq!(naive.entry_envs, wl.entry_envs, "{ctx}: entry envs differ");
    assert!(
        naive.stats.converged <= wl.stats.converged,
        "{ctx}: solver claims non-convergence where naive converged"
    );
}

/// Specs exercising all three spec kinds against the template methods.
fn template_specs() -> SpecDb {
    SpecDb::from_specs([
        Spec::RetArg {
            target: MethodId::new("HashMap", "get", 1),
            source: MethodId::new("HashMap", "put", 2),
            x: 2,
        },
        Spec::RetRecv {
            method: MethodId::new("StringBuilder", "append", 1),
        },
        Spec::RetSame {
            method: MethodId::new("?", "get", 1),
        },
        Spec::RetSame {
            method: MethodId::new("?", "use1", 0),
        },
    ])
}

/// Statement templates over a fixed variable set; scoping is correct by
/// construction (the prelude assigns every variable).
fn gen_stmts(depth: usize) -> BoxedStrategy<Vec<String>> {
    let var = prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")];
    let key = prop_oneof![
        Just("\"k\""),
        Just("\"x\""),
        Just("7"),
        Just("true"),
        Just("null")
    ];

    let put = (key.clone(), var.clone()).prop_map(|(k, v)| format!("map.put({k}, {v});"));
    let get = (var.clone(), key.clone()).prop_map(|(v, k)| format!("{v} = map.get({k});"));
    // Reads the key through an unknown value — exercises ⊤/⊥ in coverage
    // mode and the empty-combo path in base mode.
    let get_unknown = var
        .clone()
        .prop_map(|v| format!("{v} = map.get(root.mk());"));
    let append = (var.clone(), var.clone()).prop_map(|(v, w)| format!("{v} = sb.append({w});"));
    let alloc = var.clone().prop_map(|v| format!("{v} = new T();"));
    let root_call = (var.clone(), key.clone()).prop_map(|(v, k)| format!("{v} = root.get({k});"));
    let use_call = (var.clone(), var.clone()).prop_map(|(v, w)| format!("{v} = {w}.use1();"));
    let copy = (var.clone(), var.clone()).prop_map(|(v, w)| format!("{v} = {w};"));
    let field_store = var.clone().prop_map(|v| format!("box1.item = {v};"));
    let field_load = var.clone().prop_map(|v| format!("{v} = box1.item;"));
    let cmp =
        (var.clone(), var.clone(), var.clone()).prop_map(|(v, w, u)| format!("{v} = {w} == {u};"));

    let leaf = prop_oneof![
        3 => put,
        3 => get,
        1 => get_unknown,
        2 => append,
        2 => alloc,
        2 => root_call,
        2 => use_call,
        2 => copy,
        1 => field_store,
        1 => field_load,
        1 => cmp
    ];
    if depth == 0 {
        return proptest::collection::vec(leaf, 1..5).boxed();
    }
    let nested = gen_stmts(depth - 1);
    let wrapped = (nested, any::<bool>(), any::<bool>()).prop_map(|(inner, use_while, negate)| {
        let body = inner.join("\n");
        let cond = if negate { "!flag" } else { "flag" };
        if use_while {
            format!("while ({cond}) {{ {body} }}")
        } else {
            format!("if ({cond}) {{ {body} }} else {{ {body} }}")
        }
    });
    proptest::collection::vec(prop_oneof![3 => leaf, 1 => wrapped], 1..6).boxed()
}

fn template_body(stmts: &[String]) -> Body {
    let src = format!(
        "class Box {{ fn noop(self) {{ return self; }} }}\n\
         fn main(root, flag) {{\n\
         map = new HashMap();\n\
         sb = new StringBuilder();\n\
         box1 = new Box();\n\
         a = root.mk();\nb = root.mk();\nc = root.mk();\nd = root.mk();\n\
         {}\n}}",
        stmts.join("\n")
    );
    let program = parse(&src).expect("template parses");
    lower_program(&program, &ApiTable::new(), &LowerOptions::default())
        .expect("template lowers")
        .pop()
        .expect("one body")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn worklist_matches_naive_on_random_bodies(
        stmts in gen_stmts(2),
        coverage in any::<bool>(),
        with_specs in any::<bool>(),
        max_passes in prop_oneof![Just(1usize), Just(2), Just(64)],
    ) {
        let body = template_body(&stmts);
        let specs = if with_specs { template_specs() } else { SpecDb::empty() };
        let opts = PtaOptions {
            ghost_mode: if coverage { GhostMode::Coverage } else { GhostMode::Base },
            max_passes,
            ..PtaOptions::default()
        };
        assert_engines_agree(&body, &specs, &opts, "proptest");
    }
}

#[test]
fn read_before_write_needs_two_rounds_in_both_engines() {
    // `get` precedes `put`, so the value flows backwards through the heap:
    // both engines need a second round/pass, and at cap 1 both must
    // report non-convergence with identical (truncated) results.
    let src = r#"
        fn main(db) {
            m = new HashMap();
            x = m.get("k");
            m.put("k", db.a());
            y = x.use1();
        }
    "#;
    let program = parse(src).unwrap();
    let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
        .unwrap()
        .pop()
        .unwrap();
    let specs = SpecDb::from_specs([Spec::RetArg {
        target: MethodId::new("HashMap", "get", 1),
        source: MethodId::new("HashMap", "put", 2),
        x: 2,
    }]);
    for max_passes in [1usize, 2, 64] {
        let opts = PtaOptions {
            max_passes,
            ..PtaOptions::default()
        };
        assert_engines_agree(&body, &specs, &opts, &format!("cap{max_passes}"));
    }
    let wl = Pta::run(&body, &specs, &PtaOptions::default());
    assert!(wl.stats.converged);
    assert!(wl.stats.passes >= 2, "heap feedback needs a second round");
    let capped = Pta::run(
        &body,
        &specs,
        &PtaOptions {
            max_passes: 1,
            ..PtaOptions::default()
        },
    );
    assert!(!capped.stats.converged, "cap 1 truncates the fixpoint");
}
