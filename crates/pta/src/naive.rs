//! The rule-by-rule naive reference engine.
//!
//! Each fixpoint pass walks every reachable instruction in topological
//! block order and applies its transfer function; passes repeat until the
//! heap stops changing (ghost-field reads may observe writes from later
//! program points, and GhostR may allocate fresh objects). This is the
//! simplest correct evaluation strategy and serves as the semantic ground
//! truth the [`solver`](crate::solver) is differentially tested against.
//!
//! The final *recording* pass ([`record`]) also serves the worklist
//! engine: it replays one pass over an already-converged `(objs, heap)`
//! state to collect [`InstrRecord`]s and block entry environments, which
//! is what guarantees both engines produce identical records.

use uspec_lang::mir::{Body, CallSite, Instr, Terminator, Var};
use uspec_lang::registry::MethodId;

use crate::engine::{
    eval_call, intern_params, CallRecord, EngineKind, Env, InstrRecord, NoTrace, Pta, PtaOptions,
    PtaStats, PtsSet,
};
use crate::heap::{FieldKey, Heap};
use crate::obj::{AbsObj, ObjId, ObjKind, ObjPool};
use crate::specdb::SpecDb;

/// Runs the naive engine to its fixpoint and records the result.
pub(crate) fn solve(body: &Body, specs: &SpecDb, opts: &PtaOptions) -> Pta {
    let mut engine = Engine::fresh(body, specs, opts);
    let mut passes = 0;
    let converged;
    // The naive engine has no lowering phase: the whole fixpoint loop is
    // propagation, mirroring the worklist solver's `pta.propagate` span.
    let span = uspec_telemetry::span!("pta.propagate", "fn={}", body.func);
    loop {
        passes += 1;
        let grew = engine.pass(None);
        let dirty = engine.heap.take_dirty();
        if !dirty && !grew {
            converged = true;
            break;
        }
        if passes >= opts.max_passes {
            converged = false;
            break;
        }
    }
    drop(span);
    let stats = PtaStats {
        engine: EngineKind::Naive,
        passes,
        propagations: engine.evals,
        constraints: 0,
        converged,
    };
    record(engine, stats)
}

/// Runs the final recording pass over `engine`'s current `(objs, heap)`
/// state and assembles the [`Pta`]. Shared by both engines — the worklist
/// solver hands its converged state to [`Engine::resume`] and finishes
/// here, so records and entry environments come from identical code.
pub(crate) fn record(mut engine: Engine<'_>, stats: PtaStats) -> Pta {
    let _span = uspec_telemetry::span!("pta.record", "fn={}", engine.body.func);
    let mut records: Vec<Vec<InstrRecord>> = vec![Vec::new(); engine.body.blocks.len()];
    let entry_envs = engine.pass_record(&mut records);
    engine.heap.take_dirty();
    Pta {
        objs: engine.objs,
        heap: engine.heap,
        records,
        entry_envs,
        stats,
    }
}

/// The naive evaluation state: the MIR is interpreted directly, one full
/// pass at a time.
pub(crate) struct Engine<'a> {
    body: &'a Body,
    specs: &'a SpecDb,
    opts: &'a PtaOptions,
    pub(crate) objs: ObjPool,
    pub(crate) heap: Heap,
    /// Persistent environment for the flow-insensitive mode.
    fi_env: Option<Env>,
    /// Transfer-function evaluations performed so far.
    evals: usize,
}

impl<'a> Engine<'a> {
    /// A fresh engine with empty state.
    pub(crate) fn fresh(body: &'a Body, specs: &'a SpecDb, opts: &'a PtaOptions) -> Engine<'a> {
        Engine::resume(body, specs, opts, ObjPool::new(), Heap::new())
    }

    /// An engine over an existing `(objs, heap)` state, ready to run the
    /// recording pass.
    pub(crate) fn resume(
        body: &'a Body,
        specs: &'a SpecDb,
        opts: &'a PtaOptions,
        objs: ObjPool,
        heap: Heap,
    ) -> Engine<'a> {
        Engine {
            body,
            specs,
            opts,
            objs,
            heap,
            fi_env: (!opts.flow_sensitive).then(|| vec![PtsSet::new(); body.num_vars()]),
            evals: 0,
        }
    }

    /// Runs one forward pass, returning whether the flow-insensitive
    /// environment grew (always false in flow-sensitive mode, where envs
    /// are recomputed per pass and convergence is heap-driven).
    fn pass(&mut self, records: Option<&mut Vec<Vec<InstrRecord>>>) -> bool {
        if self.opts.flow_sensitive {
            self.pass_fs(records);
            false
        } else {
            let before: usize = self
                .fi_env
                .as_ref()
                .expect("fi env present")
                .iter()
                .map(|s| s.len())
                .sum();
            let mut env = self.fi_env.take().expect("fi env present");
            // Seed entry parameters (idempotent).
            for (var, obj) in intern_params(self.body, &mut self.objs) {
                env[var.0 as usize].insert(obj);
            }
            let mut recs = records;
            for bb in 0..self.body.blocks.len() {
                let mut block_recs = recs.as_ref().map(|_| Vec::new());
                for instr in &self.body.blocks[bb].instrs {
                    let rec = self.transfer(instr, &mut env, block_recs.is_some());
                    if let Some(rs) = block_recs.as_mut() {
                        rs.push(rec);
                    }
                }
                if let (Some(out), Some(rs)) = (recs.as_deref_mut(), block_recs) {
                    out[bb] = rs;
                }
            }
            let after: usize = env.iter().map(|s| s.len()).sum();
            self.fi_env = Some(env);
            after > before
        }
    }

    /// Final pass with record collection; returns block entry envs.
    fn pass_record(&mut self, records: &mut Vec<Vec<InstrRecord>>) -> Vec<Option<Env>> {
        if self.opts.flow_sensitive {
            self.pass_fs(Some(records))
        } else {
            self.pass(Some(records));
            let env = self.fi_env.clone().expect("fi env present");
            vec![Some(env); 1]
        }
    }

    /// Flow-sensitive forward pass over the acyclic body, returning block
    /// entry environments. If `records` is given, fills it with
    /// per-instruction observations and keeps all entry envs intact;
    /// otherwise entry envs are consumed as blocks are processed (all
    /// edges go forward, so a processed block is never re-entered).
    fn pass_fs(&mut self, mut records: Option<&mut Vec<Vec<InstrRecord>>>) -> Vec<Option<Env>> {
        let nblocks = self.body.blocks.len();
        let nvars = self.body.num_vars();
        let keep_entries = records.is_some();
        let mut entry: Vec<Option<Env>> = vec![None; nblocks];

        let mut init = vec![PtsSet::new(); nvars];
        for (var, obj) in intern_params(self.body, &mut self.objs) {
            init[var.0 as usize].insert(obj);
        }
        entry[0] = Some(init);

        for bb in 0..nblocks {
            let taken = if keep_entries {
                entry[bb].clone()
            } else {
                entry[bb].take()
            };
            let Some(mut env) = taken else {
                continue;
            };
            let mut recs = records.as_ref().map(|_| Vec::new());
            for instr in &self.body.blocks[bb].instrs {
                let rec = self.transfer(instr, &mut env, recs.is_some());
                if let Some(rs) = recs.as_mut() {
                    rs.push(rec);
                }
            }
            if let (Some(out), Some(rs)) = (records.as_deref_mut(), recs) {
                out[bb] = rs;
            }
            let succs: Vec<u32> = match &self.body.blocks[bb].term {
                Terminator::Goto(t) => vec![t.0],
                Terminator::Branch {
                    then_bb, else_bb, ..
                } => vec![then_bb.0, else_bb.0],
                Terminator::Return => vec![],
            };
            let nsuccs = succs.len();
            for (k, s) in succs.into_iter().enumerate() {
                match &mut entry[s as usize] {
                    Some(dest) => {
                        for (d, src) in dest.iter_mut().zip(&env) {
                            d.extend(src.iter().copied());
                        }
                    }
                    slot @ None => {
                        // The last successor takes the env by move — the
                        // common straight-line case allocates nothing.
                        *slot = Some(if k + 1 == nsuccs {
                            std::mem::take(&mut env)
                        } else {
                            env.clone()
                        });
                    }
                }
            }
        }
        entry
    }

    /// Assigns `set` to `dst`: strong update when flow sensitive, weak
    /// accumulation otherwise.
    fn assign(&self, env: &mut Env, dst: Var, set: PtsSet) {
        if self.opts.flow_sensitive {
            env[dst.0 as usize] = set;
        } else {
            env[dst.0 as usize].extend(set);
        }
    }

    fn transfer(&mut self, instr: &Instr, env: &mut Env, record: bool) -> InstrRecord {
        self.evals += 1;
        match instr {
            Instr::New {
                dst,
                class,
                site,
                user_class,
            } => {
                let obj = self.objs.intern(AbsObj {
                    site: *site,
                    kind: ObjKind::New {
                        class: *class,
                        user: *user_class,
                    },
                });
                self.assign(env, *dst, PtsSet::from([obj]));
                InstrRecord::Alloc { dst: *dst, obj }
            }
            Instr::Lit { dst, value, site } => {
                let obj = self.objs.intern(AbsObj {
                    site: *site,
                    kind: ObjKind::Lit(*value),
                });
                self.assign(env, *dst, PtsSet::from([obj]));
                InstrRecord::Alloc { dst: *dst, obj }
            }
            Instr::Opaque { dst, site } => {
                let obj = self.objs.intern(AbsObj {
                    site: *site,
                    kind: ObjKind::Opaque,
                });
                self.assign(env, *dst, PtsSet::from([obj]));
                InstrRecord::Alloc { dst: *dst, obj }
            }
            Instr::Copy { dst, src } => {
                let set = env[src.0 as usize].clone();
                self.assign(env, *dst, set);
                InstrRecord::Other
            }
            Instr::FieldLoad { dst, obj, field } => {
                let mut out = PtsSet::new();
                for &o in &env[obj.0 as usize] {
                    if let Some(pts) = self.heap.read(o, &FieldKey::Real(*field)) {
                        out.extend(pts.iter().copied());
                    }
                }
                self.assign(env, *dst, out);
                InstrRecord::Other
            }
            Instr::FieldStore { obj, field, src } => {
                let vals: Vec<ObjId> = env[src.0 as usize].iter().copied().collect();
                for &o in &env[obj.0 as usize] {
                    self.heap
                        .write(o, FieldKey::Real(*field), vals.iter().copied());
                }
                InstrRecord::Other
            }
            Instr::Cmp { dst, .. } | Instr::Not { dst, .. } => {
                env[dst.0 as usize] = PtsSet::new();
                InstrRecord::Other
            }
            Instr::CallApi {
                dst,
                method,
                recv,
                args,
                site,
            } => self.transfer_call(env, *dst, *method, *recv, args, *site, record),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn transfer_call(
        &mut self,
        env: &mut Env,
        dst: Option<Var>,
        method: MethodId,
        recv: Option<Var>,
        args: &[Var],
        site: CallSite,
        record: bool,
    ) -> InstrRecord {
        let recv_pts: Option<Vec<ObjId>> =
            recv.map(|r| env[r.0 as usize].iter().copied().collect());
        let arg_pts: Vec<Vec<ObjId>> = args
            .iter()
            .map(|a| env[a.0 as usize].iter().copied().collect())
            .collect();

        let ret = eval_call(
            &mut self.objs,
            &mut self.heap,
            self.specs,
            self.opts,
            method,
            site,
            recv_pts.as_deref(),
            &arg_pts,
            &mut NoTrace,
        );

        // Copy the return set out only when a record needs it; the set
        // itself moves into the environment.
        let ret_vec: Option<Vec<ObjId>> = record.then(|| ret.iter().copied().collect());
        if let Some(d) = dst {
            self.assign(env, d, ret);
        }

        if record {
            InstrRecord::Call(CallRecord {
                site,
                method,
                recv: recv_pts,
                args: arg_pts,
                ret: ret_vec.expect("collected when recording"),
                dst,
            })
        } else {
            InstrRecord::Other
        }
    }
}
