//! Abstract objects and values.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use uspec_lang::mir::{CallSite, Literal};
use uspec_lang::registry::MethodId;
use uspec_lang::Symbol;

use crate::heap::GhostField;

/// Index of an abstract object in an [`ObjPool`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjId(pub u32);

impl std::fmt::Debug for ObjId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// What kind of allocation an abstract object stands for.
///
/// Under the paper's API-unaware starting assumption (§3.2), the return
/// value of every API call is a *fresh* abstract object
/// ([`ObjKind::ApiRet`]); learned specifications later introduce aliasing on
/// top of this.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjKind {
    /// `new C()` allocation (the paper's `⟨newT, ret⟩` events).
    New {
        /// Allocated class.
        class: Symbol,
        /// Whether `class` is user-defined in the same file.
        user: bool,
    },
    /// A literal construction (the paper's `⟨lc_i, ret⟩` events).
    Lit(Literal),
    /// Fresh object returned by an API call site.
    ApiRet(MethodId),
    /// Fresh object standing for an entry-function parameter.
    Param {
        /// Parameter index.
        index: u8,
        /// Declared type, if annotated.
        class: Option<Symbol>,
    },
    /// Result of an unresolvable operation (inlining cut-off etc.).
    Opaque,
    /// Object allocated by the GhostR rule when a RetSame field is read
    /// before any write (Tab. 2, bottom-right note).
    Ghost {
        /// The receiver object owning the ghost field.
        owner: ObjId,
        /// The field that was read.
        field: GhostField,
    },
}

/// An abstract object: an allocation site plus its kind.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AbsObj {
    /// The site the object was allocated at ([`CallSite::node`] is a dummy
    /// for parameters).
    pub site: CallSite,
    /// The allocation kind.
    pub kind: ObjKind,
}

impl AbsObj {
    /// The `val_G` contribution of this object (§5.1): literal values carry
    /// their literal, `new` allocations carry their unique site identity,
    /// everything else has no known value.
    pub fn value(&self) -> Option<Value> {
        match &self.kind {
            ObjKind::Lit(l) => Some(Value::from_literal(*l)),
            ObjKind::New { .. } => Some(Value::Obj(self.site)),
            _ => None,
        }
    }

    /// The class of the object, if statically known.
    pub fn class(&self) -> Option<Symbol> {
        match &self.kind {
            ObjKind::New { class, .. } => Some(*class),
            ObjKind::Param { class, .. } => *class,
            _ => None,
        }
    }
}

/// A value usable for argument-equality checks and ghost-field names.
///
/// This is the paper's value set `V`: literal constants plus unique
/// identifiers of allocated objects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A literal constant.
    Lit(LitKey),
    /// The identity of a `new` allocation site.
    Obj(CallSite),
}

impl Value {
    /// Wraps a literal.
    pub fn from_literal(l: Literal) -> Value {
        Value::Lit(LitKey::from(l))
    }
}

/// Orderable key form of a literal (f64-free, so `Ord` is derivable).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LitKey {
    /// String literal.
    Str(u32),
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
}

impl From<Literal> for LitKey {
    fn from(l: Literal) -> LitKey {
        match l {
            Literal::Str(s) => LitKey::Str(s.index()),
            Literal::Int(i) => LitKey::Int(i),
            Literal::Bool(b) => LitKey::Bool(b),
            Literal::Null => LitKey::Null,
        }
    }
}

impl std::fmt::Debug for LitKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LitKey::Str(i) => write!(f, "str#{i}"),
            LitKey::Int(i) => write!(f, "{i}"),
            LitKey::Bool(b) => write!(f, "{b}"),
            LitKey::Null => write!(f, "null"),
        }
    }
}

/// Interning pool of abstract objects for one analysis run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObjPool {
    objs: Vec<AbsObj>,
    index: HashMap<AbsObj, ObjId>,
}

impl ObjPool {
    /// Creates an empty pool.
    pub fn new() -> ObjPool {
        ObjPool::default()
    }

    /// Interns an abstract object, returning its id.
    pub fn intern(&mut self, obj: AbsObj) -> ObjId {
        if let Some(&id) = self.index.get(&obj) {
            return id;
        }
        let id = ObjId(self.objs.len() as u32);
        self.objs.push(obj.clone());
        self.index.insert(obj, id);
        id
    }

    /// Returns the object for an id.
    pub fn get(&self, id: ObjId) -> &AbsObj {
        &self.objs[id.0 as usize]
    }

    /// Number of interned objects.
    pub fn len(&self) -> usize {
        self.objs.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.objs.is_empty()
    }

    /// Iterates over `(ObjId, &AbsObj)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, &AbsObj)> {
        self.objs
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjId(i as u32), o))
    }

    /// The set of values (`val_G`) of a points-to set.
    pub fn values_of(&self, pts: &[ObjId]) -> Vec<Value> {
        let mut vals: Vec<Value> = pts.iter().filter_map(|&o| self.get(o).value()).collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_lang::ast::NodeId;
    use uspec_lang::mir::CtxId;

    fn site(n: u32) -> CallSite {
        CallSite {
            node: NodeId(n),
            ctx: CtxId(0),
        }
    }

    #[test]
    fn pool_interns_structurally() {
        let mut pool = ObjPool::new();
        let a = pool.intern(AbsObj {
            site: site(1),
            kind: ObjKind::Opaque,
        });
        let b = pool.intern(AbsObj {
            site: site(1),
            kind: ObjKind::Opaque,
        });
        let c = pool.intern(AbsObj {
            site: site(2),
            kind: ObjKind::Opaque,
        });
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn values_of_collects_literals_and_new_sites() {
        let mut pool = ObjPool::new();
        let lit = pool.intern(AbsObj {
            site: site(1),
            kind: ObjKind::Lit(Literal::Int(7)),
        });
        let new = pool.intern(AbsObj {
            site: site(2),
            kind: ObjKind::New {
                class: Symbol::intern("A"),
                user: false,
            },
        });
        let api = pool.intern(AbsObj {
            site: site(3),
            kind: ObjKind::ApiRet(MethodId::new("C", "m", 0)),
        });
        let vals = pool.values_of(&[lit, new, api]);
        assert_eq!(vals.len(), 2, "API returns contribute no value");
        assert!(vals.contains(&Value::from_literal(Literal::Int(7))));
        assert!(vals.contains(&Value::Obj(site(2))));
    }

    #[test]
    fn api_ret_has_no_value() {
        // Models val_G(⟨m, ret⟩) = ∅ for API calls (§5.1).
        let obj = AbsObj {
            site: site(9),
            kind: ObjKind::ApiRet(MethodId::new("C", "m", 1)),
        };
        assert_eq!(obj.value(), None);
    }
}
