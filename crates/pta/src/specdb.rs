//! Aliasing specifications and the database the analysis consumes.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet};
use uspec_lang::registry::MethodId;

/// An API aliasing specification (Tab. 1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Spec {
    /// `RetSame(s)`: calling `s` multiple times with equal arguments and
    /// receiver may return the same object.
    RetSame {
        /// The method `s`.
        method: MethodId,
    },
    /// `RetArg(t, s, x)`: calling `t` may return the `x`-th argument of a
    /// preceding call of `s` on the same receiver where all other arguments
    /// are equal.
    RetArg {
        /// The reading method `t`.
        target: MethodId,
        /// The writing method `s`.
        source: MethodId,
        /// 1-based argument position of the stored value in `s`.
        x: u8,
    },
    /// `RetRecv(m)`: calling `m` may return its receiver (builder-style
    /// APIs). This pattern is *not* in the paper's hypothesis class; §5.3
    /// notes the approach "is fundamentally not restricted to these
    /// patterns" — `RetRecv` is the implemented extension of that remark.
    RetRecv {
        /// The method `m`.
        method: MethodId,
    },
}

impl Spec {
    /// The API class the specification concerns (the class of `s`).
    pub fn class(&self) -> uspec_lang::Symbol {
        match self {
            Spec::RetSame { method } | Spec::RetRecv { method } => method.class,
            Spec::RetArg { source, .. } => source.class,
        }
    }
}

impl std::fmt::Debug for Spec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Spec::RetSame { method } => write!(f, "RetSame({method})"),
            Spec::RetArg { target, source, x } => {
                write!(f, "RetArg({target}, {source}, {x})")
            }
            Spec::RetRecv { method } => write!(f, "RetRecv({method})"),
        }
    }
}

impl std::fmt::Display for Spec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// An indexed set of specifications, closed under the §5.4 extension rule
/// `RetArg(t, s, x) ∈ S ⟹ RetSame(t) ∈ S`.
#[derive(Clone, Debug, Default)]
pub struct SpecDb {
    specs: BTreeSet<Spec>,
    ret_same: HashSet<MethodId>,
    ret_recv: HashSet<MethodId>,
    ret_arg_by_source: HashMap<MethodId, Vec<(MethodId, u8)>>,
    /// RetSame specs added by the closure rather than supplied directly.
    extended: BTreeSet<Spec>,
}

impl SpecDb {
    /// The empty database: the paper's API-unaware baseline analysis.
    pub fn empty() -> SpecDb {
        SpecDb::default()
    }

    /// Builds a closed database from raw specifications.
    ///
    /// # Examples
    ///
    /// ```
    /// use uspec_pta::specdb::{Spec, SpecDb};
    /// use uspec_lang::MethodId;
    ///
    /// let get = MethodId::new("java.util.HashMap", "get", 1);
    /// let put = MethodId::new("java.util.HashMap", "put", 2);
    /// let db = SpecDb::from_specs([Spec::RetArg { target: get, source: put, x: 2 }]);
    /// // §5.4 closure: RetSame(get) is implied.
    /// assert!(db.has_ret_same(get));
    /// assert_eq!(db.len(), 2);
    /// ```
    pub fn from_specs(specs: impl IntoIterator<Item = Spec>) -> SpecDb {
        let mut db = SpecDb::default();
        for s in specs {
            db.insert(s);
        }
        db
    }

    /// Inserts one specification (and its closure consequence).
    pub fn insert(&mut self, spec: Spec) {
        if !self.specs.insert(spec) {
            return;
        }
        match spec {
            Spec::RetSame { method } => {
                self.ret_same.insert(method);
                self.extended.remove(&spec);
            }
            Spec::RetRecv { method } => {
                self.ret_recv.insert(method);
            }
            Spec::RetArg { target, source, x } => {
                self.ret_arg_by_source
                    .entry(source)
                    .or_default()
                    .push((target, x));
                let implied = Spec::RetSame { method: target };
                if self.specs.insert(implied) {
                    self.ret_same.insert(target);
                    self.extended.insert(implied);
                }
            }
        }
    }

    /// Whether `RetSame(m)` is in the database.
    pub fn has_ret_same(&self, m: MethodId) -> bool {
        self.ret_same.contains(&m)
    }

    /// Whether `RetRecv(m)` is in the database.
    pub fn has_ret_recv(&self, m: MethodId) -> bool {
        self.ret_recv.contains(&m)
    }

    /// All `RetArg(t, source, x)` specs with the given write method.
    pub fn ret_args_from(&self, source: MethodId) -> &[(MethodId, u8)] {
        self.ret_arg_by_source
            .get(&source)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All specifications, sorted.
    pub fn iter(&self) -> impl Iterator<Item = &Spec> {
        self.specs.iter()
    }

    /// Specifications added solely by the §5.4 closure.
    pub fn extension_added(&self) -> impl Iterator<Item = &Spec> {
        self.extended.iter()
    }

    /// Number of specifications (after closure).
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Whether a particular spec is present.
    pub fn contains(&self, spec: &Spec) -> bool {
        self.specs.contains(spec)
    }
}

impl FromIterator<Spec> for SpecDb {
    fn from_iter<T: IntoIterator<Item = Spec>>(iter: T) -> SpecDb {
        SpecDb::from_specs(iter)
    }
}

impl Extend<Spec> for SpecDb {
    fn extend<T: IntoIterator<Item = Spec>>(&mut self, iter: T) {
        for s in iter {
            self.insert(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get() -> MethodId {
        MethodId::new("C", "get", 1)
    }
    fn put() -> MethodId {
        MethodId::new("C", "put", 2)
    }

    #[test]
    fn closure_adds_ret_same_of_target() {
        let db = SpecDb::from_specs([Spec::RetArg {
            target: get(),
            source: put(),
            x: 2,
        }]);
        assert!(db.has_ret_same(get()));
        assert_eq!(db.extension_added().count(), 1);
        // Property (3) of §5.4 holds.
        for spec in db.iter() {
            if let Spec::RetArg { target, .. } = spec {
                assert!(db.has_ret_same(*target));
            }
        }
    }

    #[test]
    fn explicit_ret_same_is_not_counted_as_extension() {
        let db = SpecDb::from_specs([
            Spec::RetSame { method: get() },
            Spec::RetArg {
                target: get(),
                source: put(),
                x: 2,
            },
        ]);
        assert_eq!(db.extension_added().count(), 0);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn lookup_by_source() {
        let db = SpecDb::from_specs([Spec::RetArg {
            target: get(),
            source: put(),
            x: 2,
        }]);
        assert_eq!(db.ret_args_from(put()), &[(get(), 2)]);
        assert!(db.ret_args_from(get()).is_empty());
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut db = SpecDb::empty();
        db.insert(Spec::RetSame { method: get() });
        db.insert(Spec::RetSame { method: get() });
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn ret_recv_lookup() {
        let m = MethodId::new("java.lang.StringBuilder", "append", 1);
        let db = SpecDb::from_specs([Spec::RetRecv { method: m }]);
        assert!(db.has_ret_recv(m));
        assert!(
            !db.has_ret_same(m),
            "RetRecv does not imply RetSame in the db"
        );
        assert_eq!(Spec::RetRecv { method: m }.class(), m.class);
        assert_eq!(
            Spec::RetRecv { method: m }.to_string(),
            "RetRecv(java.lang.StringBuilder.append/1)"
        );
    }

    #[test]
    fn display_formats() {
        let s = Spec::RetArg {
            target: get(),
            source: put(),
            x: 2,
        };
        assert_eq!(s.to_string(), "RetArg(C.get/1, C.put/2, 2)");
    }
}
