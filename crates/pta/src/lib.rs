//! # uspec-pta
//!
//! Andersen-style points-to analysis for the USpec reproduction.
//!
//! The paper (§3.2, §6) uses a flow- and context-sensitive Andersen-style
//! analysis in two roles:
//!
//! 1. **API-unaware baseline** — API calls return fresh objects, providing
//!    the abstract objects and points-to sets from which event graphs are
//!    built (run with [`SpecDb::empty`]).
//! 2. **Spec-augmented may-alias analysis** — learned [`Spec`]s drive ghost
//!    field reads/writes (GhostW/GhostR of Tab. 2), optionally with the
//!    §6.4 / App. A ⊤/⊥ coverage extension
//!    ([`GhostMode::Coverage`]).
//!
//! Context sensitivity comes from the frontend: `uspec-lang` lowers programs
//! into acyclic bodies with user calls inlined and calling contexts
//! materialized in every [`uspec_lang::CallSite`].
//!
//! ## Example
//!
//! ```
//! use uspec_lang::{parse, lower_program, LowerOptions, ApiTable, MethodId};
//! use uspec_pta::{Pta, PtaOptions, Spec, SpecDb};
//!
//! let program = parse(r#"
//!     fn main(db) {
//!         map = new HashMap();
//!         map.put("key", db.getFile("a"));
//!         x = map.get("key");
//!     }
//! "#)?;
//! let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())?
//!     .pop()
//!     .expect("one function");
//!
//! let specs = SpecDb::from_specs([Spec::RetArg {
//!     target: MethodId::new("HashMap", "get", 1),
//!     source: MethodId::new("HashMap", "put", 2),
//!     x: 2,
//! }]);
//! let pta = Pta::run(&body, &specs, &PtaOptions::default());
//! let put = pta.call_records().find(|c| c.method.method.as_str() == "put").unwrap();
//! let get = pta.call_records().find(|c| c.method.method.as_str() == "get").unwrap();
//! assert!(Pta::may_alias(&put.args[1], &get.ret));
//! # Ok::<(), uspec_lang::LangError>(())
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod engine;

pub(crate) mod constraints;
mod differential_tests;
pub mod heap;
pub(crate) mod naive;
pub mod obj;
mod rules_tests;
pub(crate) mod solver;
pub mod specdb;

pub use aggregate::PtaAggregate;
pub use engine::{
    CallRecord, EngineKind, Env, GhostMode, InstrRecord, Pta, PtaOptions, PtaStats, PtsSet,
};
pub use heap::{FieldKey, GhostField, Heap};
pub use obj::{AbsObj, ObjId, ObjKind, ObjPool, Value};
pub use specdb::{Spec, SpecDb};
