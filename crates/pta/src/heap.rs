//! The abstract heap `π`, including ghost fields.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use uspec_lang::registry::MethodId;
use uspec_lang::Symbol;

use crate::obj::{ObjId, Value};

/// Name of a ghost field (§6.2 and App. A).
///
/// The first component of a named ghost field is the method that *reads*
/// the field; the value tuple is derived from argument values. `Top(M)`
/// receives writes whose full name is unknown; `Bot(M)` receives *all*
/// writes destined for fields `(M, ...)` and is read when a read's field
/// name is unknown.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GhostField {
    /// Fully-resolved field `(reader, v_1, ..., v_k)`.
    Named(MethodId, Vec<Value>),
    /// `⊤_M`: writes with unresolvable names for reader `M`.
    Top(MethodId),
    /// `⊥_M`: all writes for reader `M`; read when the read name is unknown.
    Bot(MethodId),
}

impl GhostField {
    /// The reading method of the field.
    pub fn reader(&self) -> MethodId {
        match self {
            GhostField::Named(m, _) | GhostField::Top(m) | GhostField::Bot(m) => *m,
        }
    }
}

/// A field selector on an abstract object.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FieldKey {
    /// A real (user-object) field.
    Real(Symbol),
    /// A ghost field abstracting API-internal storage.
    Ghost(GhostField),
}

/// The global, flow-insensitive heap `π : (obj, field) → P(obj)`.
///
/// Monotonically growing; the engine iterates to a fixpoint over it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Heap {
    map: BTreeMap<(ObjId, FieldKey), BTreeSet<ObjId>>,
    dirty: bool,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Weakly updates `π(obj, field) ∪= vals`, flagging the heap dirty if
    /// anything changed. Returns whether this particular write grew the
    /// slot, so delta-propagating callers can dirty only the readers of
    /// fields that actually changed.
    pub fn write(
        &mut self,
        obj: ObjId,
        field: FieldKey,
        vals: impl IntoIterator<Item = ObjId>,
    ) -> bool {
        let slot = self.map.entry((obj, field)).or_default();
        let mut changed = false;
        for v in vals {
            if slot.insert(v) {
                changed = true;
            }
        }
        self.dirty |= changed;
        changed
    }

    /// Reads `π(obj, field)`.
    pub fn read(&self, obj: ObjId, field: &FieldKey) -> Option<&BTreeSet<ObjId>> {
        self.map.get(&(obj, field.clone()))
    }

    /// Whether `π(obj, field)` is empty or absent.
    pub fn is_empty_at(&self, obj: ObjId, field: &FieldKey) -> bool {
        self.read(obj, field).is_none_or(|s| s.is_empty())
    }

    /// Clears and returns the dirty flag.
    pub fn take_dirty(&mut self) -> bool {
        std::mem::take(&mut self.dirty)
    }

    /// Number of non-empty field slots.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the heap has no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over all `(obj, field) → pts` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&(ObjId, FieldKey), &BTreeSet<ObjId>)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid() -> MethodId {
        MethodId::new("C", "get", 1)
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut heap = Heap::new();
        let f = FieldKey::Ghost(GhostField::Top(mid()));
        heap.write(ObjId(0), f.clone(), [ObjId(1), ObjId(2)]);
        let pts = heap.read(ObjId(0), &f).unwrap();
        assert_eq!(pts.len(), 2);
        assert!(heap.take_dirty());
        assert!(!heap.take_dirty(), "dirty flag resets");
    }

    #[test]
    fn rewriting_same_value_is_not_dirty() {
        let mut heap = Heap::new();
        let f = FieldKey::Real(Symbol::intern("x"));
        heap.write(ObjId(0), f.clone(), [ObjId(1)]);
        heap.take_dirty();
        heap.write(ObjId(0), f.clone(), [ObjId(1)]);
        assert!(!heap.take_dirty());
    }

    #[test]
    fn fields_are_disjoint() {
        let mut heap = Heap::new();
        let f1 = FieldKey::Real(Symbol::intern("a"));
        let f2 = FieldKey::Real(Symbol::intern("b"));
        heap.write(ObjId(0), f1.clone(), [ObjId(1)]);
        assert!(heap.is_empty_at(ObjId(0), &f2));
        assert!(!heap.is_empty_at(ObjId(0), &f1));
        assert!(heap.is_empty_at(ObjId(9), &f1));
    }

    #[test]
    fn ghost_field_reader_accessor() {
        let m = mid();
        assert_eq!(GhostField::Named(m, vec![]).reader(), m);
        assert_eq!(GhostField::Top(m).reader(), m);
        assert_eq!(GhostField::Bot(m).reader(), m);
    }
}
