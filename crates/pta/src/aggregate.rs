//! Corpus-level aggregation of per-body [`PtaStats`].
//!
//! One [`PtaAggregate`] folds the solver statistics of every analyzed body
//! — totals plus a per-body pass-count histogram. The histogram is the
//! diagnostic the engine benchmarks need: a corpus whose bodies converge in
//! one or two passes is bound by the shared recording pass (where the
//! worklist engine cannot win), while a long-tailed histogram marks the
//! iteration-heavy workloads where delta propagation pays off.
//!
//! Aggregation is pure bookkeeping over [`PtaStats`] values, so it is
//! deterministic and independent of shard layout or thread schedule; the
//! streaming pipeline folds it into its corpus statistics and the run
//! report's `counters.pta` section.

use std::collections::BTreeMap;

use crate::engine::PtaStats;

/// Aggregated solver statistics over many analyzed bodies.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PtaAggregate {
    /// Bodies analyzed.
    pub bodies: usize,
    /// Fixpoint passes (naive) / rounds (worklist), summed.
    pub passes: usize,
    /// Transfer-function / constraint evaluations, summed.
    pub propagations: usize,
    /// Constraints built, summed (0 under the naive engine, which has no
    /// constraint IR).
    pub constraints: usize,
    /// Bodies that hit the pass cap without converging.
    pub non_converged: usize,
    /// Per-body pass count → number of bodies.
    pass_counts: BTreeMap<usize, usize>,
}

impl PtaAggregate {
    /// Folds one body's statistics in.
    pub fn record(&mut self, stats: &PtaStats) {
        self.bodies += 1;
        self.passes += stats.passes;
        self.propagations += stats.propagations;
        self.constraints += stats.constraints;
        self.non_converged += usize::from(!stats.converged);
        *self.pass_counts.entry(stats.passes).or_insert(0) += 1;
    }

    /// Merges another aggregate in (e.g. one shard's into the corpus').
    pub fn merge(&mut self, other: &PtaAggregate) {
        self.bodies += other.bodies;
        self.passes += other.passes;
        self.propagations += other.propagations;
        self.constraints += other.constraints;
        self.non_converged += other.non_converged;
        for (&passes, &count) in &other.pass_counts {
            *self.pass_counts.entry(passes).or_insert(0) += count;
        }
    }

    /// The pass-count histogram: per-body pass count → number of bodies,
    /// ascending by pass count.
    pub fn pass_histogram(&self) -> &BTreeMap<usize, usize> {
        &self.pass_counts
    }

    /// Rebuilds an aggregate from its totals and pass-count histogram —
    /// the inverse of reading the public fields plus [`pass_histogram`]
    /// (used by the artifact store's flat cache encoding).
    ///
    /// [`pass_histogram`]: PtaAggregate::pass_histogram
    pub fn from_parts(
        bodies: usize,
        passes: usize,
        propagations: usize,
        constraints: usize,
        non_converged: usize,
        pass_counts: impl IntoIterator<Item = (usize, usize)>,
    ) -> PtaAggregate {
        PtaAggregate {
            bodies,
            passes,
            propagations,
            constraints,
            non_converged,
            pass_counts: pass_counts.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineKind;

    fn stats(passes: usize, converged: bool) -> PtaStats {
        PtaStats {
            engine: EngineKind::Worklist,
            passes,
            propagations: passes * 10,
            constraints: 7,
            converged,
        }
    }

    #[test]
    fn record_and_merge_agree() {
        let all = [
            stats(2, true),
            stats(2, true),
            stats(5, true),
            stats(64, false),
        ];
        let mut whole = PtaAggregate::default();
        for s in &all {
            whole.record(s);
        }

        let mut left = PtaAggregate::default();
        let mut right = PtaAggregate::default();
        for s in &all[..2] {
            left.record(s);
        }
        for s in &all[2..] {
            right.record(s);
        }
        left.merge(&right);

        assert_eq!(left, whole);
        assert_eq!(whole.bodies, 4);
        assert_eq!(whole.passes, 2 + 2 + 5 + 64);
        assert_eq!(whole.propagations, (2 + 2 + 5 + 64) * 10);
        assert_eq!(whole.constraints, 28);
        assert_eq!(whole.non_converged, 1);
        let hist: Vec<(usize, usize)> = whole
            .pass_histogram()
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect();
        assert_eq!(hist, vec![(2, 2), (5, 1), (64, 1)]);
    }
}
