//! The versioned on-disk entry envelope.
//!
//! Every object in the store is one file holding:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"USPC"
//! 4       4     store format version (u32 LE)
//! 8       16    key fingerprint (hi, lo — u64 LE each)
//! 24      8     payload length (u64 LE)
//! 32      n     payload bytes
//! 32+n    8     checksum (u64 LE) over bytes [0, 32+n)
//! ```
//!
//! Decoding is total: any deviation — wrong magic, foreign format version,
//! truncation, trailing bytes, checksum mismatch, key mismatch — comes back
//! as a typed [`EnvelopeError`], never a panic. The caller treats every
//! error as a cache miss.

use crate::fingerprint::{checksum64, Fingerprint};

/// Magic bytes opening every store object.
pub const MAGIC: [u8; 4] = *b"USPC";

/// Version of the envelope + payload layout. Bump on any change to either;
/// entries with a different version decode to
/// [`EnvelopeError::VersionMismatch`] and are treated as misses.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Envelope header length in bytes.
const HEADER_LEN: usize = 32;
/// Trailing checksum length in bytes.
const CHECKSUM_LEN: usize = 8;

/// Why an envelope failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnvelopeError {
    /// The file is shorter than a minimal envelope or than its own declared
    /// payload length.
    Truncated {
        /// Bytes present.
        got: usize,
        /// Bytes required.
        need: usize,
    },
    /// The magic bytes are wrong — not a store object at all.
    BadMagic,
    /// The entry was written by a different store format version.
    VersionMismatch {
        /// Version found in the envelope.
        found: u32,
    },
    /// The file is longer than header + payload + checksum.
    TrailingBytes {
        /// Extra byte count.
        extra: usize,
    },
    /// The stored checksum does not match the bytes.
    ChecksumMismatch,
    /// The embedded key differs from the key the caller looked up — the
    /// object landed under the wrong name.
    KeyMismatch {
        /// Key found in the envelope.
        found: Fingerprint,
    },
}

impl std::fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvelopeError::Truncated { got, need } => {
                write!(f, "truncated entry: {got} bytes, need {need}")
            }
            EnvelopeError::BadMagic => write!(f, "bad magic (not a store object)"),
            EnvelopeError::VersionMismatch { found } => write!(
                f,
                "store format version {found} != expected {STORE_FORMAT_VERSION}"
            ),
            EnvelopeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after checksum")
            }
            EnvelopeError::ChecksumMismatch => write!(f, "checksum mismatch"),
            EnvelopeError::KeyMismatch { found } => {
                write!(f, "entry holds key {found}, not the requested one")
            }
        }
    }
}

/// Encodes `payload` under `key` into a self-checking envelope.
pub fn encode(key: Fingerprint, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.hi.to_le_bytes());
    out.extend_from_slice(&key.lo.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = checksum64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(buf)
}

/// Decodes an envelope, returning the embedded key and payload.
///
/// When `expect_key` is given, the embedded key must match it. All failure
/// modes are [`EnvelopeError`] values — decoding never panics on arbitrary
/// bytes.
pub fn decode(
    bytes: &[u8],
    expect_key: Option<Fingerprint>,
) -> Result<(Fingerprint, Vec<u8>), EnvelopeError> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(EnvelopeError::Truncated {
            got: bytes.len(),
            need: HEADER_LEN + CHECKSUM_LEN,
        });
    }
    if bytes[..4] != MAGIC {
        return Err(EnvelopeError::BadMagic);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != STORE_FORMAT_VERSION {
        return Err(EnvelopeError::VersionMismatch { found: version });
    }
    let key = Fingerprint {
        hi: read_u64(bytes, 8),
        lo: read_u64(bytes, 16),
    };
    let len = read_u64(bytes, 24) as usize;
    let need = HEADER_LEN
        .checked_add(len)
        .and_then(|n| n.checked_add(CHECKSUM_LEN))
        .ok_or(EnvelopeError::Truncated {
            got: bytes.len(),
            need: usize::MAX,
        })?;
    if bytes.len() < need {
        return Err(EnvelopeError::Truncated {
            got: bytes.len(),
            need,
        });
    }
    if bytes.len() > need {
        return Err(EnvelopeError::TrailingBytes {
            extra: bytes.len() - need,
        });
    }
    let body_end = HEADER_LEN + len;
    let stored = read_u64(bytes, body_end);
    if checksum64(&bytes[..body_end]) != stored {
        return Err(EnvelopeError::ChecksumMismatch);
    }
    if let Some(expected) = expect_key {
        if key != expected {
            return Err(EnvelopeError::KeyMismatch { found: key });
        }
    }
    Ok((key, bytes[HEADER_LEN..body_end].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint_str;

    #[test]
    fn encode_decode_round_trip() {
        let key = fingerprint_str("k");
        let enc = encode(key, b"hello payload");
        let (k, p) = decode(&enc, Some(key)).unwrap();
        assert_eq!(k, key);
        assert_eq!(p, b"hello payload");
        // Empty payloads are valid too.
        let enc = encode(key, b"");
        assert_eq!(decode(&enc, Some(key)).unwrap().1, Vec::<u8>::new());
    }

    #[test]
    fn truncation_is_detected() {
        let key = fingerprint_str("k");
        let enc = encode(key, b"0123456789");
        for cut in [0, 3, HEADER_LEN, enc.len() - 1] {
            let err = decode(&enc[..cut], Some(key)).unwrap_err();
            assert!(
                matches!(err, EnvelopeError::Truncated { .. }),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let key = fingerprint_str("k");
        let enc = encode(key, b"sensitive bytes");
        // Flip one payload bit.
        let mut bad = enc.clone();
        bad[HEADER_LEN + 2] ^= 0x40;
        assert_eq!(
            decode(&bad, Some(key)).unwrap_err(),
            EnvelopeError::ChecksumMismatch
        );
    }

    #[test]
    fn foreign_version_and_magic_are_rejected() {
        let key = fingerprint_str("k");
        let mut enc = encode(key, b"x");
        enc[4] = STORE_FORMAT_VERSION as u8 + 1;
        // Restore the checksum so only the version differs.
        let sum_at = enc.len() - CHECKSUM_LEN;
        let sum = checksum64(&enc[..sum_at]);
        enc[sum_at..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode(&enc, Some(key)).unwrap_err(),
            EnvelopeError::VersionMismatch { .. }
        ));

        let mut bad = encode(key, b"x");
        bad[0] = b'Z';
        assert_eq!(
            decode(&bad, Some(key)).unwrap_err(),
            EnvelopeError::BadMagic
        );
    }

    #[test]
    fn key_and_length_mismatches_are_rejected() {
        let key = fingerprint_str("k");
        let other = fingerprint_str("other");
        let enc = encode(key, b"x");
        assert!(matches!(
            decode(&enc, Some(other)).unwrap_err(),
            EnvelopeError::KeyMismatch { .. }
        ));
        let mut long = enc.clone();
        long.push(0);
        assert!(matches!(
            decode(&long, Some(key)).unwrap_err(),
            EnvelopeError::TrailingBytes { extra: 1 }
        ));
    }
}
