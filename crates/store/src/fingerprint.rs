//! Content fingerprints for cache keys.
//!
//! A [`Fingerprint`] is a 128-bit digest built from two independently
//! seeded FNV-1a lanes, each finalized with a splitmix64-style avalanche.
//! This is **not** a cryptographic hash — the store is a cache keyed on
//! trusted local inputs, so the bar is "collisions are vanishingly
//! unlikely for corpus-sized key sets", not adversarial resistance. Every
//! multi-part input is length-prefixed before hashing so that
//! `("ab", "c")` and `("a", "bc")` fingerprint differently.

/// A 128-bit content fingerprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    /// High 64 bits (lane A).
    pub hi: u64,
    /// Low 64 bits (lane B).
    pub lo: u64,
}

impl Fingerprint {
    /// Renders the fingerprint as 32 lowercase hex digits (the on-disk
    /// object name).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the [`Fingerprint::hex`] rendering back.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        Some(Fingerprint {
            hi: u64::from_str_radix(&s[..16], 16).ok()?,
            lo: u64::from_str_radix(&s[16..], 16).ok()?,
        })
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Lane B runs FNV with a different offset *and* a different odd
/// multiplier so the two 64-bit lanes do not collapse into one.
const LANE_B_OFFSET: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;
const LANE_B_PRIME: u64 = 0x0000_0100_0000_01d9;

/// Incremental fingerprint builder.
///
/// `Clone` is intentional: the pipeline keeps one rolling hasher per corpus
/// pass and snapshots its [`digest`](FpHasher::digest) before each shard to
/// key that shard on everything that came before it.
#[derive(Clone, Debug)]
pub struct FpHasher {
    a: u64,
    b: u64,
}

impl Default for FpHasher {
    fn default() -> FpHasher {
        FpHasher::new()
    }
}

/// splitmix64 finalizer: full avalanche of one 64-bit word.
fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FpHasher {
    /// A fresh hasher.
    pub fn new() -> FpHasher {
        FpHasher {
            a: FNV_OFFSET,
            b: LANE_B_OFFSET,
        }
    }

    /// Feeds raw bytes (no length prefix — use the typed writers for
    /// multi-part keys).
    pub fn write_raw(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(LANE_B_PRIME);
        }
    }

    /// Feeds one length-prefixed byte string.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write_raw(bytes);
    }

    /// Feeds one length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Feeds one `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_raw(&v.to_le_bytes());
    }

    /// Feeds another fingerprint (e.g. a per-shard digest into a corpus
    /// rolling digest).
    pub fn write_fingerprint(&mut self, fp: Fingerprint) {
        self.write_u64(fp.hi);
        self.write_u64(fp.lo);
    }

    /// The digest of everything written so far. Non-consuming, so a
    /// rolling hasher can be sampled mid-stream.
    pub fn digest(&self) -> Fingerprint {
        Fingerprint {
            hi: avalanche(self.a),
            lo: avalanche(self.b ^ self.a.rotate_left(32)),
        }
    }
}

/// Fingerprints one string in a single call.
pub fn fingerprint_str(s: &str) -> Fingerprint {
    let mut h = FpHasher::new();
    h.write_str(s);
    h.digest()
}

/// Domain-separation seed for the envelope checksum: without it,
/// `checksum64` would be exactly lane A of [`FpHasher`] and an envelope's
/// checksum could correlate with its key fingerprint.
const CHECKSUM_OFFSET: u64 = FNV_OFFSET ^ 0x6a09_e667_f3bc_c908;

/// 64-bit FNV-1a over raw bytes — the envelope checksum. Seeded apart
/// from [`FpHasher`] so the checksum of an envelope does not depend on the
/// key-fingerprint construction.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = CHECKSUM_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    avalanche(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let fp = fingerprint_str("hello");
        let hex = fp.hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::from_hex(&hex), Some(fp));
        assert_eq!(Fingerprint::from_hex("xyz"), None);
        assert_eq!(Fingerprint::from_hex(&hex[..31]), None);
    }

    #[test]
    fn length_prefix_disambiguates_concatenation() {
        let mut h1 = FpHasher::new();
        h1.write_str("ab");
        h1.write_str("c");
        let mut h2 = FpHasher::new();
        h2.write_str("a");
        h2.write_str("bc");
        assert_ne!(h1.digest(), h2.digest());
    }

    #[test]
    fn digest_is_deterministic_and_input_sensitive() {
        assert_eq!(fingerprint_str("corpus"), fingerprint_str("corpus"));
        assert_ne!(fingerprint_str("corpus"), fingerprint_str("corpuS"));
        // The two lanes disagree, i.e. the fingerprint is wider than 64 bits.
        let fp = fingerprint_str("corpus");
        assert_ne!(fp.hi, fp.lo);
    }

    #[test]
    fn rolling_snapshots_differ_per_prefix() {
        let mut h = FpHasher::new();
        let d0 = h.digest();
        h.write_str("shard0");
        let d1 = h.digest();
        h.write_str("shard1");
        let d2 = h.digest();
        assert_ne!(d0, d1);
        assert_ne!(d1, d2);
    }

    #[test]
    fn checksum_differs_from_fingerprint_lanes() {
        let c = checksum64(b"payload");
        let mut h = FpHasher::new();
        h.write_raw(b"payload");
        assert_ne!(c, h.digest().hi);
    }
}
