//! The on-disk content-addressed artifact store.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/objects/<first 2 hex of key>/<remaining 30 hex>.usc
//! ```
//!
//! Writes are atomic: the envelope is written to a temp file in the final
//! directory and `rename`d into place, so readers never observe a partial
//! entry and concurrent writers of the same key are last-wins with either
//! outcome valid (same key ⇒ same bytes).
//!
//! Reads are **total**: any problem — missing file, foreign format
//! version, truncation, checksum failure, I/O error — degrades to a
//! [`Lookup::Miss`] with a typed [`MissReason`]; the store never panics on
//! bad bytes. Non-`Absent` misses are additionally recorded in a
//! process-global incident log (see [`incidents`]) that the run report's
//! machine-local cache section surfaces.
//!
//! Telemetry: `store.lookup` / `store.hit` / `store.miss` / `store.corrupt`
//! / `store.bytes_read` / `store.bytes_written` / `store.evicted` counters
//! and `store.read` / `store.write` spans. Cache behavior depends on what
//! previous runs left on disk, so these must stay out of the deterministic
//! report sections — the report assembler routes `store.*` counters into
//! the machine-local `timings.cache` section.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

use crate::envelope::{self, EnvelopeError};
use crate::fingerprint::Fingerprint;
use uspec_telemetry::{counter, span};

/// File extension of store objects.
const OBJECT_EXT: &str = "usc";

/// Result of a [`ArtifactStore::get`] lookup.
#[derive(Clone, Debug)]
pub enum Lookup {
    /// The entry was found, verified, and decoded.
    Hit(Vec<u8>),
    /// No usable entry; `MissReason` says why.
    Miss(MissReason),
}

impl Lookup {
    /// The payload, if this was a hit.
    pub fn hit(self) -> Option<Vec<u8>> {
        match self {
            Lookup::Hit(bytes) => Some(bytes),
            Lookup::Miss(_) => None,
        }
    }
}

/// Why a lookup missed. Everything except `Absent` is an *incident*: an
/// entry existed but could not be used, which the store records in the
/// incident log and counts under `store.corrupt`.
#[derive(Clone, Debug)]
pub enum MissReason {
    /// No entry under this key — the ordinary cold-cache miss.
    Absent,
    /// The entry failed envelope validation (version mismatch, truncation,
    /// checksum or key mismatch, bad magic).
    Invalid(EnvelopeError),
    /// The entry could not be read.
    Io(String),
}

impl std::fmt::Display for MissReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MissReason::Absent => write!(f, "absent"),
            MissReason::Invalid(e) => write!(f, "invalid entry: {e}"),
            MissReason::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

/// Aggregate size of a store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of objects.
    pub entries: u64,
    /// Total object bytes on disk.
    pub bytes: u64,
}

/// Outcome of [`ArtifactStore::verify`].
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Entries that decoded cleanly.
    pub ok: u64,
    /// `(path, problem)` for every entry that failed validation.
    pub corrupt: Vec<(PathBuf, String)>,
}

/// Outcome of [`ArtifactStore::gc`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries examined.
    pub scanned: u64,
    /// Entries removed (oldest mtime first).
    pub evicted: u64,
    /// Total bytes before eviction.
    pub bytes_before: u64,
    /// Total bytes after eviction.
    pub bytes_after: u64,
}

/// A content-addressed artifact store rooted at one directory.
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
    /// Distinguishes temp files of concurrent writers within one process.
    temp_seq: AtomicU64,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: &Path) -> io::Result<ArtifactStore> {
        fs::create_dir_all(dir.join("objects"))?;
        Ok(ArtifactStore {
            root: dir.to_path_buf(),
            temp_seq: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// On-disk path of `key`'s object.
    pub fn object_path(&self, key: Fingerprint) -> PathBuf {
        let hex = key.hex();
        self.root
            .join("objects")
            .join(&hex[..2])
            .join(format!("{}.{OBJECT_EXT}", &hex[2..]))
    }

    /// Looks `key` up, returning the verified payload or a typed miss.
    /// Hits refresh the object's mtime so `gc` evicts least-recently-used
    /// entries first.
    pub fn get(&self, key: Fingerprint) -> Lookup {
        let _span = span!("store.read", "{key}");
        counter!("store.lookup").inc();
        let path = self.object_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                counter!("store.miss").inc();
                return Lookup::Miss(MissReason::Absent);
            }
            Err(e) => {
                counter!("store.miss").inc();
                counter!("store.corrupt").inc();
                let reason = MissReason::Io(e.to_string());
                incidents::record(format!("{}: {reason}", path.display()));
                return Lookup::Miss(reason);
            }
        };
        match envelope::decode(&bytes, Some(key)) {
            Ok((_, payload)) => {
                counter!("store.hit").inc();
                counter!("store.bytes_read").add(bytes.len() as u64);
                // Best-effort LRU touch; a read-only store is still a cache.
                let _ = fs::File::open(&path).and_then(|f| f.set_modified(SystemTime::now()));
                Lookup::Hit(payload)
            }
            Err(e) => {
                counter!("store.miss").inc();
                counter!("store.corrupt").inc();
                let reason = MissReason::Invalid(e);
                incidents::record(format!("{}: {reason}", path.display()));
                Lookup::Miss(reason)
            }
        }
    }

    /// Writes `payload` under `key` atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a failed put leaves no partial object behind.
    pub fn put(&self, key: Fingerprint, payload: &[u8]) -> io::Result<()> {
        let _span = span!("store.write", "{key} bytes={}", payload.len());
        let path = self.object_path(key);
        let dir = path.parent().expect("object path has a parent");
        fs::create_dir_all(dir)?;
        let bytes = envelope::encode(key, payload);
        let temp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.temp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let written = fs::write(&temp, &bytes);
        let renamed = written.and_then(|()| fs::rename(&temp, &path));
        if renamed.is_err() {
            let _ = fs::remove_file(&temp);
        }
        renamed?;
        counter!("store.bytes_written").add(bytes.len() as u64);
        Ok(())
    }

    /// Every object in the store as `(path, mtime, size)`, sorted by path
    /// for determinism.
    fn objects(&self) -> io::Result<Vec<(PathBuf, SystemTime, u64)>> {
        let mut out = Vec::new();
        let objects = self.root.join("objects");
        for bucket in sorted_dir(&objects)? {
            if !bucket.is_dir() {
                continue;
            }
            for path in sorted_dir(&bucket)? {
                if path.extension().is_none_or(|e| e != OBJECT_EXT) {
                    continue;
                }
                let meta = match fs::metadata(&path) {
                    Ok(m) => m,
                    Err(_) => continue, // racing gc/writer; skip
                };
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                out.push((path, mtime, meta.len()));
            }
        }
        Ok(out)
    }

    /// Entry count and total bytes.
    pub fn stats(&self) -> io::Result<StoreStats> {
        let objects = self.objects()?;
        Ok(StoreStats {
            entries: objects.len() as u64,
            bytes: objects.iter().map(|(_, _, size)| size).sum(),
        })
    }

    /// Decodes every entry, reporting the ones that fail validation.
    /// The object's file name must also match its embedded key.
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let mut report = VerifyReport::default();
        for (path, _, _) in self.objects()? {
            let named_key = key_of_path(&path);
            let problem = match fs::read(&path) {
                Err(e) => Some(format!("unreadable: {e}")),
                Ok(bytes) => match envelope::decode(&bytes, named_key) {
                    Ok(_) => None,
                    Err(e) => Some(e.to_string()),
                },
            };
            match problem {
                None => report.ok += 1,
                Some(p) => report.corrupt.push((path, p)),
            }
        }
        Ok(report)
    }

    /// On-disk path of a mutable ref slot.
    fn ref_path(&self, slot: Fingerprint) -> PathBuf {
        let hex = slot.hex();
        self.root
            .join("refs")
            .join(&hex[..2])
            .join(format!("{}.ref", &hex[2..]))
    }

    /// Points the mutable ref `slot` at `key` (atomic temp file + rename).
    ///
    /// Refs are the store's only mutable state: named pointers from a
    /// stable *slot* fingerprint (e.g. "content of corpus file #17") to
    /// the content fingerprint last observed there. The job graph compares
    /// them across runs to count invalidations and detect changed files.
    /// Unlike objects they are not content-addressed, so they are excluded
    /// from the `store.*` cache counters, from `verify`, and from `gc`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a failed write leaves no partial ref behind.
    pub fn set_ref(&self, slot: Fingerprint, key: Fingerprint) -> io::Result<()> {
        let path = self.ref_path(slot);
        let dir = path.parent().expect("ref path has a parent");
        fs::create_dir_all(dir)?;
        let temp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.temp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let written = fs::write(&temp, key.hex());
        let renamed = written.and_then(|()| fs::rename(&temp, &path));
        if renamed.is_err() {
            let _ = fs::remove_file(&temp);
        }
        renamed
    }

    /// Reads the key the ref `slot` currently points at. Total: a missing
    /// or malformed ref is `None`.
    pub fn get_ref(&self, slot: Fingerprint) -> Option<Fingerprint> {
        let bytes = fs::read(self.ref_path(slot)).ok()?;
        Fingerprint::from_hex(std::str::from_utf8(&bytes).ok()?.trim())
    }

    /// Evicts least-recently-used entries (oldest mtime first; path order
    /// breaks ties) until total size is at most `max_bytes`.
    pub fn gc(&self, max_bytes: u64) -> io::Result<GcReport> {
        let mut objects = self.objects()?;
        objects.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        let mut report = GcReport {
            scanned: objects.len() as u64,
            bytes_before: objects.iter().map(|(_, _, size)| size).sum(),
            ..GcReport::default()
        };
        report.bytes_after = report.bytes_before;
        for (path, _, size) in objects {
            if report.bytes_after <= max_bytes {
                break;
            }
            fs::remove_file(&path)?;
            report.bytes_after -= size;
            report.evicted += 1;
        }
        counter!("store.evicted").add(report.evicted);
        Ok(report)
    }
}

/// Directory entries sorted by path (stable iteration for stats/verify/gc).
fn sorted_dir(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    out.sort();
    Ok(out)
}

/// Reconstructs the key a well-formed object path names.
fn key_of_path(path: &Path) -> Option<Fingerprint> {
    let stem = path.file_stem()?.to_str()?;
    let bucket = path.parent()?.file_name()?.to_str()?;
    Fingerprint::from_hex(&format!("{bucket}{stem}"))
}

/// Process-global log of cache *incidents*: misses where an entry existed
/// but could not be used (corruption, version skew, I/O failure).
///
/// This mirrors the telemetry registry pattern — a global sink that the
/// run-report assembler snapshots into the machine-local `timings.cache`
/// section. Incidents depend on what earlier runs left on disk, so they
/// must never feed the deterministic report sections.
pub mod incidents {
    use std::sync::Mutex;

    /// Cap on retained incident strings (the count is never capped — see
    /// the `store.corrupt` counter).
    pub const MAX_RETAINED: usize = 32;

    static LOG: Mutex<Vec<String>> = Mutex::new(Vec::new());

    /// Records one incident, keeping at most [`MAX_RETAINED`] strings.
    pub fn record(incident: String) {
        let mut log = LOG.lock().expect("incident log poisoned");
        if log.len() < MAX_RETAINED {
            log.push(incident);
        }
    }

    /// A copy of the retained incidents, in record order.
    pub fn snapshot() -> Vec<String> {
        LOG.lock().expect("incident log poisoned").clone()
    }

    /// Clears the log (tests and multi-run processes).
    pub fn reset() {
        LOG.lock().expect("incident log poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint_str;

    fn tmp_store(name: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("uspec-store-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ArtifactStore::open(&dir).unwrap()
    }

    #[test]
    fn put_get_round_trip() {
        let store = tmp_store("roundtrip");
        let key = fingerprint_str("entry");
        assert!(matches!(store.get(key), Lookup::Miss(MissReason::Absent)));
        store.put(key, b"payload bytes").unwrap();
        assert_eq!(store.get(key).hit().unwrap(), b"payload bytes");
        // Overwrite is last-wins.
        store.put(key, b"second").unwrap();
        assert_eq!(store.get(key).hit().unwrap(), b"second");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corruption_degrades_to_miss_and_incident() {
        let store = tmp_store("corrupt");
        incidents::reset();
        let key = fingerprint_str("entry");
        store.put(key, b"will be damaged").unwrap();
        let path = store.object_path(key);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.get(key),
            Lookup::Miss(MissReason::Invalid(_))
        ));
        assert!(incidents::snapshot()
            .iter()
            .any(|i| i.contains("checksum") || i.contains("invalid")));
        // Truncation likewise.
        fs::write(&path, &fs::read(&path).unwrap()[..10]).unwrap();
        assert!(matches!(
            store.get(key),
            Lookup::Miss(MissReason::Invalid(EnvelopeError::Truncated { .. }))
        ));
        incidents::reset();
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn stats_verify_and_gc() {
        let store = tmp_store("gc");
        let keys: Vec<Fingerprint> = (0..4).map(|i| fingerprint_str(&format!("k{i}"))).collect();
        for (i, &k) in keys.iter().enumerate() {
            store
                .put(k, format!("payload number {i}").as_bytes())
                .unwrap();
            // Space mtimes out so LRU order is deterministic.
            let t = SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1000 + i as u64);
            fs::File::open(store.object_path(k))
                .unwrap()
                .set_modified(t)
                .unwrap();
        }
        let stats = store.stats().unwrap();
        assert_eq!(stats.entries, 4);
        assert!(stats.bytes > 0);
        let verify = store.verify().unwrap();
        assert_eq!(verify.ok, 4);
        assert!(verify.corrupt.is_empty());

        // Evict down to roughly half: the two oldest go first.
        let report = store.gc(stats.bytes / 2).unwrap();
        assert_eq!(report.scanned, 4);
        assert!(report.evicted >= 2, "{report:?}");
        assert!(report.bytes_after <= stats.bytes / 2);
        assert!(matches!(
            store.get(keys[0]),
            Lookup::Miss(MissReason::Absent)
        ));
        assert!(store.get(keys[3]).hit().is_some(), "newest survives");

        // gc with a huge budget is a no-op.
        let before = store.stats().unwrap();
        let noop = store.gc(u64::MAX).unwrap();
        assert_eq!(noop.evicted, 0);
        assert_eq!(store.stats().unwrap(), before);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn verify_flags_damaged_and_misplaced_entries() {
        let store = tmp_store("verify");
        let key = fingerprint_str("good");
        store.put(key, b"fine").unwrap();
        // An object whose name does not match its embedded key.
        let other = fingerprint_str("elsewhere");
        let path = store.object_path(other);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, envelope::encode(key, b"misfiled")).unwrap();
        let report = store.verify().unwrap();
        assert_eq!(report.ok, 1);
        assert_eq!(report.corrupt.len(), 1);
        assert!(report.corrupt[0].1.contains("key"), "{report:?}");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn refs_are_mutable_named_pointers() {
        let store = tmp_store("refs");
        let slot = fingerprint_str("slot:file:17");
        assert_eq!(store.get_ref(slot), None, "unset ref reads as None");
        let k1 = fingerprint_str("content v1");
        let k2 = fingerprint_str("content v2");
        store.set_ref(slot, k1).unwrap();
        assert_eq!(store.get_ref(slot), Some(k1));
        store.set_ref(slot, k2).unwrap();
        assert_eq!(store.get_ref(slot), Some(k2), "refs overwrite in place");
        // Refs live outside the object namespace: stats/verify ignore them.
        assert_eq!(store.stats().unwrap().entries, 0);
        assert_eq!(store.verify().unwrap().ok, 0);
        // A malformed ref degrades to None.
        fs::write(store.ref_path(slot), "not hex").unwrap();
        assert_eq!(store.get_ref(slot), None);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn incident_log_is_capped() {
        incidents::reset();
        for i in 0..(incidents::MAX_RETAINED + 10) {
            incidents::record(format!("incident {i}"));
        }
        assert_eq!(incidents::snapshot().len(), incidents::MAX_RETAINED);
        incidents::reset();
        assert!(incidents::snapshot().is_empty());
    }
}
