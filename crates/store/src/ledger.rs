//! Append-only persistence for the run ledger.
//!
//! Ledger entries live under `<store-root>/ledger/<id>.json` — a sibling
//! namespace to `objects/` and `refs/`, so `stats`, `verify`, and `gc`
//! (which walk `objects/` only) never count or evict them: run history
//! must survive cache eviction, since its whole point is comparing
//! against the past.
//!
//! This module deliberately stores opaque JSON strings. The record schema
//! ([`uspec_telemetry::ledger::LedgerEntry`]) lives in the telemetry
//! crate; keeping the persistence layer schema-blind means the store
//! needs no serde machinery and old entries keep loading after schema
//! bumps (validation is the reader's job, see `tools/check_ledger.rs`).
//!
//! Entry ids are `<timestamp_ms>-<pid>-<seq>`, zero-padded so that
//! lexicographic order is chronological order — [`LedgerDir::ids`] sorted
//! ascending *is* the run history, and concurrent writers on one host
//! cannot collide.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use uspec_telemetry::counter;

/// Per-process appended-entry sequence number (disambiguates entries
/// written in the same millisecond by the same process).
static SEQ: AtomicU64 = AtomicU64::new(0);

/// An append-only directory of ledger entries.
pub struct LedgerDir {
    dir: PathBuf,
}

impl LedgerDir {
    /// Opens (creating if needed) a ledger directory.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<LedgerDir> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(LedgerDir {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    /// The ledger's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one entry (a serialized JSON record), returning its id.
    /// The write is atomic: temp file then rename, so a crashed run never
    /// leaves a half-written entry for readers to trip over.
    pub fn append(&self, json: &str) -> io::Result<String> {
        let id = format!(
            "{:013}-{:05}-{:04}",
            uspec_telemetry::ledger::timestamp_ms(),
            std::process::id() % 100_000,
            SEQ.fetch_add(1, Ordering::Relaxed) % 10_000,
        );
        let tmp = self.dir.join(format!(".tmp-{id}"));
        fs::write(&tmp, json)?;
        fs::rename(&tmp, self.dir.join(format!("{id}.json")))?;
        counter!("store.ledger_appends").inc();
        Ok(id)
    }

    /// All entry ids, oldest first (lexicographic = chronological).
    pub fn ids(&self) -> io::Result<Vec<String>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                ids.push(stem.to_owned());
            }
        }
        ids.sort();
        Ok(ids)
    }

    /// Reads the entry with `id`.
    pub fn read(&self, id: &str) -> io::Result<String> {
        fs::read_to_string(self.dir.join(format!("{id}.json")))
    }

    /// Reads every entry, oldest first, as `(id, json)` pairs.
    pub fn entries(&self) -> io::Result<Vec<(String, String)>> {
        self.ids()?
            .into_iter()
            .map(|id| self.read(&id).map(|json| (id, json)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fingerprint_str, ArtifactStore};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("uspec-ledger-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_list_read_round_trip_in_order() {
        let root = tmp_dir("roundtrip");
        let ledger = LedgerDir::open(&root).unwrap();
        let a = ledger.append("{\"run\": 1}").unwrap();
        let b = ledger.append("{\"run\": 2}").unwrap();
        assert!(a < b, "ids are chronological: {a} !< {b}");
        assert_eq!(ledger.ids().unwrap(), vec![a.clone(), b.clone()]);
        assert_eq!(ledger.read(&a).unwrap(), "{\"run\": 1}");
        let entries = ledger.entries().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1], (b, "{\"run\": 2}".to_owned()));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn ledger_survives_gc_and_stays_out_of_stats() {
        let root = tmp_dir("gc-exclusion");
        let store = ArtifactStore::open(&root).unwrap();
        store.put(fingerprint_str("object"), b"payload").unwrap();
        let ledger = LedgerDir::open(root.join("ledger")).unwrap();
        let id = ledger.append("{\"run\": 1}").unwrap();

        // gc to zero evicts every object but never touches the ledger.
        let report = store.gc(0).unwrap();
        assert_eq!(report.evicted, 1);
        assert_eq!(ledger.read(&id).unwrap(), "{\"run\": 1}");

        // stats and verify walk objects/ only.
        let stats = store.stats().unwrap();
        assert_eq!(stats.entries, 0);
        let verify = store.verify().unwrap();
        assert!(verify.ok == 0 && verify.corrupt.is_empty());
        let _ = fs::remove_dir_all(&root);
    }
}
