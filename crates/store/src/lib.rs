//! Persistent content-addressed artifact store for warm-start runs.
//!
//! The streaming pipeline recomputes every stage from scratch on each run,
//! even when most corpus shards have not changed. This crate gives the
//! pipeline a durable memory: per-shard stage outputs are serialized into
//! self-checking envelopes and stored under a 128-bit fingerprint of
//! everything that could influence them — shard content, every prior
//! file's content (dedup state is cross-shard), the analysis-relevant
//! pipeline options, the sampling seed, and the store format version. A
//! warm re-run looks each shard up by fingerprint and skips the frontend,
//! points-to, and graph work for hits while producing byte-identical
//! results to a cold run.
//!
//! Three layers:
//!
//! * [`fingerprint`] — 128-bit dual-lane FNV content fingerprints and the
//!   rolling [`fingerprint::FpHasher`] used for prefix digests.
//! * [`envelope`] — the versioned on-disk entry format: magic, format
//!   version, embedded key, length-prefixed payload, trailing checksum.
//!   Decoding is total; every deviation is a typed error.
//! * [`store`] — the [`ArtifactStore`] itself: atomic puts, verified
//!   gets that degrade corruption to recorded misses, `stats`/`verify`
//!   and LRU-by-mtime `gc`.
//!
//! A fourth, adjacent namespace: [`ledger`] — append-only run-history
//! records under `<root>/ledger/`, outside the object walk and therefore
//! exempt from `gc`/`stats`/`verify`.
//!
//! Cache *hits* depend on what previous runs left on disk, so everything
//! observable about the store (counters, spans, incidents) is machine-local
//! telemetry and must stay out of the deterministic run-report sections.

pub mod envelope;
pub mod fingerprint;
pub mod ledger;
pub mod store;

pub use envelope::{EnvelopeError, STORE_FORMAT_VERSION};
pub use fingerprint::{fingerprint_str, Fingerprint, FpHasher};
pub use ledger::LedgerDir;
pub use store::{incidents, ArtifactStore, GcReport, Lookup, MissReason, StoreStats, VerifyReport};
