//! # uspec
//!
//! End-to-end reproduction of **USpec** — *Unsupervised Learning of API
//! Aliasing Specifications* (Eberhardt, Steffen, Raychev, Vechev; PLDI
//! 2019).
//!
//! USpec learns API aliasing specifications (`RetSame(s)`,
//! `RetArg(t, s, x)`) from a large corpus of programs, fully unsupervised:
//!
//! 1. an API-unaware points-to analysis turns every file into *event
//!    graphs* ([`uspec_graph`]);
//! 2. a probabilistic model of event-graph edges is trained on those graphs
//!    ([`uspec_model`]);
//! 3. candidate specifications are extracted wherever the two patterns
//!    match, and scored by querying the model on the edges each candidate
//!    *induces* ([`uspec_learn`]);
//! 4. selected specifications augment an Andersen-style may-alias analysis
//!    through ghost fields ([`uspec_pta`]).
//!
//! This crate wires the stages into a single [`run_pipeline`] entry point
//! and provides the evaluation machinery (precision/recall, Tab. 4 call-site
//! classification) used by the benchmark harness.
//!
//! ## Quickstart
//!
//! ```
//! use uspec::{run_pipeline, PipelineOptions};
//! use uspec_corpus::{generate_corpus, java_library, GenOptions};
//!
//! let lib = java_library();
//! let files = generate_corpus(&lib, &GenOptions { num_files: 120, ..GenOptions::default() });
//! let sources: Vec<(String, String)> = files.into_iter().map(|f| (f.name, f.source)).collect();
//!
//! let result = run_pipeline(&sources, &lib.api_table(), &PipelineOptions::default());
//! let specs = result.select(0.6); // τ = 0.6 as in §7.2
//! println!("learned {} specifications", specs.len());
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod eval;
pub mod explain;
pub mod jobs;
pub mod pipeline;
pub mod report;
pub mod stage;

pub use eval::{
    compare_on_corpus, precision_recall, stable_obj_key, ClassifiedSite, DiffCategory, DiffReport,
    PrPoint,
};
pub use explain::{explain_entries, ExplainEntry};
pub use pipeline::{
    analyze_source, analyze_source_with_specs, run_pipeline, run_pipeline_cached,
    run_pipeline_streaming, CorpusStats, CorpusTotals, PipelineOptions, PipelineResult,
};
pub use report::{
    build_run_report, cache_section, jobs_section, provenance_section, pta_counters, serve_section,
    timings_section,
};
pub use stage::{
    AnalysisDiagnostic, AnalysisStage, AnalyzedFile, DedupFilter, DiagnosticKind, FileAnalysis,
};

// Re-export the member crates for downstream convenience.
pub use uspec_graph as graph;
pub use uspec_lang as lang;
pub use uspec_learn as learn;
pub use uspec_model as model;
pub use uspec_pta as pta;
