//! Job keys and payload encodings for the incremental pipeline.
//!
//! Every pipeline job is keyed by a **content fingerprint of its actual
//! inputs** — the file's bytes plus the option fingerprints its output
//! depends on — never by the file's position in the corpus or by what came
//! before it. That is what makes invalidation *demand-shaped*: editing one
//! file changes exactly the keys in that file's cone (its analyze / stats /
//! samples / pairs jobs, the model, and — because the model changed — every
//! score job), while every other key still resolves out of the store.
//!
//! The previous design keyed per-*shard* entries on a rolling prefix
//! digest of all earlier corpus content, so an edit to file 0 invalidated
//! every shard after it. Per-file content keys fix that over-invalidation
//! structurally: there is no prefix in any key.
//!
//! Key discipline, per job kind:
//!
//! * **analyze** — analysis options + file content. In-memory only.
//! * **stats** — same inputs as analyze (the stats payload is a pure
//!   function of the analysis). Durable. The payload is *name-free*: file
//!   names are stamped on when the delta is absorbed, so a rename is not
//!   an invalidation.
//! * **samples** — analysis options + training options + content + the
//!   file's **stable corpus index** (per-graph RNG streams are seeded from
//!   it, §4.2 determinism).
//! * **pairs** — analysis options + extraction/featurization options +
//!   content. Model-independent by construction (see
//!   [`uspec_learn::FileBlueprints`]), so a retrain does not invalidate
//!   blueprints.
//! * **digest** — same content-level inputs as samples + pairs; the
//!   payload is the pair of **value digests** (fingerprints of the encoded
//!   samples and blueprints). Durable and tiny: it lets later stages key on
//!   what a file's derivatives *are* rather than on the bytes they came
//!   from.
//! * **model** — an associative fold over the kept corpus: training
//!   options plus each kept file's `(index, samples value digest)` in
//!   corpus order. Keying on value digests gives **early cutoff**
//!   (Adapton/Salsa-style): an edit that leaves a file's extracted samples
//!   unchanged — formatting, dead code, non-API logic — does not retrain.
//! * **score** — the model key + each kept file's `(index, name, pairs
//!   value digest)` in corpus order (evidence records cite index and
//!   name). One corpus-level artifact: the merged candidate set, capped
//!   provenance, and the model's training stats.
//!
//! `shard_size` appears in **no** key: shard boundaries only bound memory.
//! Likewise `score_fn` (applied after extraction) and `dirty` (a forcing
//! directive, not an input).
//!
//! Ref slots (see [`uspec_store::ArtifactStore::set_ref`]) give the store
//! a mutable notion of "current": one slot per corpus index holding that
//! file's last-seen content fingerprint, plus one slot each for the model
//! and score keys. Comparing them at plan time yields the
//! `jobs.invalidated` count — the size of the edit's cone root set — and
//! powers changed-file detection.

use serde::{Deserialize, Serialize};
use uspec_lang::LangError;
use uspec_learn::ProvenanceIndex;
use uspec_model::TrainStats;
use uspec_pta::{PtaAggregate, Spec};
use uspec_store::{fingerprint_str, Fingerprint, FpHasher};

use crate::pipeline::{CorpusStats, PipelineOptions};
use crate::stage::{AnalysisDiagnostic, AnalysisStage, AnalyzedFile, DiagnosticKind, FileAnalysis};

/// Fingerprint of every pipeline option that can influence any cached job
/// output — the run's configuration identity, used for ref slots. Uses the
/// `Debug` renderings of the option structs: each derives `Debug` over all
/// fields, so any knob change (including newly added fields) changes the
/// text and invalidates old entries — a conservative but sound rule.
pub fn options_fingerprint(opts: &PipelineOptions) -> Fingerprint {
    let mut h = FpHasher::new();
    h.write_str(&format!("{:?}", opts.lower));
    h.write_str(&format!("{:?}", opts.pta));
    h.write_str(&format!("{:?}", opts.graph));
    h.write_str(&format!("{:?}", opts.train));
    h.write_str(&format!("{:?}", opts.extract));
    h.write_u64(u64::from(opts.dedup));
    h.write_u64(opts.max_diagnostics as u64);
    h.digest()
}

/// The option fingerprints job keys are built from, computed once per run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptionFps {
    /// Analysis-relevant knobs: lowering, points-to, graph construction.
    pub analyze: Fingerprint,
    /// Training knobs (covers the sampling RNG seed).
    pub train: Fingerprint,
    /// Extraction + featurization knobs (blueprints capture featurizations,
    /// so `full_contexts` / `context_depth` are pair inputs, not model
    /// inputs).
    pub pairs: Fingerprint,
}

impl OptionFps {
    /// Computes the per-stage option fingerprints.
    pub fn new(opts: &PipelineOptions) -> OptionFps {
        let mut h = FpHasher::new();
        h.write_str(&format!("{:?}", opts.lower));
        h.write_str(&format!("{:?}", opts.pta));
        h.write_str(&format!("{:?}", opts.graph));
        let analyze = h.digest();
        let mut h = FpHasher::new();
        h.write_str(&format!("{:?}", opts.train));
        let train = h.digest();
        let mut h = FpHasher::new();
        h.write_str(&format!("{:?}", opts.extract));
        h.write_u64(u64::from(opts.train.full_contexts));
        h.write_u64(opts.train.context_depth as u64);
        let pairs = h.digest();
        OptionFps {
            analyze,
            train,
            pairs,
        }
    }
}

/// Content fingerprint of one source file.
pub fn content_fingerprint(source: &str) -> Fingerprint {
    fingerprint_str(source)
}

fn key_of(tag: &str, parts: &[Fingerprint]) -> Fingerprint {
    let mut h = FpHasher::new();
    h.write_str(tag);
    for p in parts {
        h.write_fingerprint(*p);
    }
    h.digest()
}

/// Key of a file's analyze job (parse/lower/PTA/graphs; in-memory).
pub fn analyze_job_key(fps: &OptionFps, content: Fingerprint) -> Fingerprint {
    key_of("analyze:v2", &[fps.analyze, content])
}

/// Key of a file's stats job (durable, name-free).
pub fn stats_job_key(fps: &OptionFps, content: Fingerprint) -> Fingerprint {
    key_of("stats:v2", &[fps.analyze, content])
}

/// Key of a file's samples job. `index` is the stable corpus index: the
/// per-graph RNG streams are seeded from it, so the same content at a
/// different position yields different (but deterministic) samples.
pub fn samples_job_key(fps: &OptionFps, content: Fingerprint, index: u64) -> Fingerprint {
    let mut h = FpHasher::new();
    h.write_str("samples:v2");
    h.write_fingerprint(fps.analyze);
    h.write_fingerprint(fps.train);
    h.write_fingerprint(content);
    h.write_u64(index);
    h.digest()
}

/// Key of a file's pair-blueprints job (durable, model-independent).
pub fn pairs_job_key(fps: &OptionFps, content: Fingerprint) -> Fingerprint {
    key_of("pairs:v2", &[fps.analyze, fps.pairs, content])
}

/// Key of a file's digest job (durable): the content-level identity of
/// the samples + pairs value digests it stores.
pub fn digest_job_key(fps: &OptionFps, content: Fingerprint, index: u64) -> Fingerprint {
    let mut h = FpHasher::new();
    h.write_str("digest:v1");
    h.write_fingerprint(fps.analyze);
    h.write_fingerprint(fps.train);
    h.write_fingerprint(fps.pairs);
    h.write_fingerprint(content);
    h.write_u64(index);
    h.digest()
}

/// Fingerprint of a value's canonical encoding — the "what it is" identity
/// early cutoff compares.
pub fn value_digest<T: Serialize>(value: &T) -> Fingerprint {
    let mut h = FpHasher::new();
    h.write_bytes(&encode_payload(value));
    h.digest()
}

/// Key of the trained edge model: training options plus a fold over each
/// kept file's stable index and **samples value digest**, in corpus order.
/// Index participation is required (RNG streams are seeded from indices);
/// value-digest participation is the early cutoff — identical sample sets
/// mean an identical model, no matter what the file bytes look like.
pub fn model_job_key(fps: &OptionFps, kept: &[(u64, Fingerprint)]) -> Fingerprint {
    let mut h = FpHasher::new();
    h.write_str("model:v3");
    h.write_fingerprint(fps.train);
    h.write_u64(kept.len() as u64);
    for &(index, samples_digest) in kept {
        h.write_u64(index);
        h.write_fingerprint(samples_digest);
    }
    h.digest()
}

/// Key of the corpus score artifact: every kept file's pairs scored under
/// one model and merged in corpus order. Indices and names are inputs
/// because evidence records cite them; pairs participate by **value
/// digest**, so an edit that leaves a file's blueprints unchanged does not
/// re-score.
pub fn score_job_key(model: Fingerprint, kept: &[(u64, String, Fingerprint)]) -> Fingerprint {
    let mut h = FpHasher::new();
    h.write_str("score:v2");
    h.write_fingerprint(model);
    h.write_u64(kept.len() as u64);
    for (index, name, pairs_digest) in kept {
        h.write_u64(*index);
        h.write_str(name);
        h.write_fingerprint(*pairs_digest);
    }
    h.digest()
}

/// Ref slot holding the last-seen content fingerprint of corpus index
/// `index` under one run configuration.
pub fn file_ref_slot(opts_fp: Fingerprint, index: u64) -> Fingerprint {
    let mut h = FpHasher::new();
    h.write_str("ref:file:v1");
    h.write_fingerprint(opts_fp);
    h.write_u64(index);
    h.digest()
}

/// Ref slot holding the last-built model key under one run configuration.
pub fn model_ref_slot(opts_fp: Fingerprint) -> Fingerprint {
    key_of("ref:model:v1", &[opts_fp])
}

/// Ref slot holding the last-built corpus score key under one run
/// configuration.
pub fn score_ref_slot(opts_fp: Fingerprint) -> Fingerprint {
    key_of("ref:score:v1", &[opts_fp])
}

/// Durable per-file analysis outcome: everything [`CorpusStats`] needs
/// from one file, minus the file's *name* (stamped on at absorb time, so
/// renames do not invalidate) and minus `duplicates` /
/// `peak_resident_graphs` (properties of the run, not the file).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FileStatsPayload {
    /// Event graphs (one per entry function); 0 for failed files.
    pub graphs: u64,
    /// Total events across the file's graphs.
    pub events: u64,
    /// Total edges across the file's graphs.
    pub edges: u64,
    /// [`PtaAggregate::bodies`].
    pub pta_bodies: u64,
    /// [`PtaAggregate::passes`].
    pub pta_passes: u64,
    /// [`PtaAggregate::propagations`].
    pub pta_propagations: u64,
    /// [`PtaAggregate::constraints`].
    pub pta_constraints: u64,
    /// [`PtaAggregate::non_converged`].
    pub pta_non_converged: u64,
    /// Pass-count histogram as `(passes, bodies)` pairs.
    pub pta_pass_counts: Vec<(u64, u64)>,
    /// `(function name, passes)` per body that hit the pass cap.
    pub non_converged: Vec<(String, u64)>,
    /// The frontend rejection, if the file failed to analyze.
    pub error: Option<(AnalysisStage, LangError)>,
}

impl FileStatsPayload {
    /// Captures one file's analysis outcome.
    pub fn from_analysis(analysis: &FileAnalysis) -> FileStatsPayload {
        match analysis {
            Ok(file) => FileStatsPayload::from_file(file),
            Err((stage, error)) => FileStatsPayload {
                error: Some((*stage, error.clone())),
                ..FileStatsPayload::default()
            },
        }
    }

    fn from_file(file: &AnalyzedFile) -> FileStatsPayload {
        FileStatsPayload {
            graphs: file.graphs.len() as u64,
            events: file.graphs.iter().map(|g| g.num_events() as u64).sum(),
            edges: file.graphs.iter().map(|g| g.num_edges() as u64).sum(),
            pta_bodies: file.pta.bodies as u64,
            pta_passes: file.pta.passes as u64,
            pta_propagations: file.pta.propagations as u64,
            pta_constraints: file.pta.constraints as u64,
            pta_non_converged: file.pta.non_converged as u64,
            pta_pass_counts: file
                .pta
                .pass_histogram()
                .iter()
                .map(|(&p, &n)| (p as u64, n as u64))
                .collect(),
            non_converged: file
                .non_converged
                .iter()
                .map(|(f, p)| (f.clone(), *p as u64))
                .collect(),
            error: None,
        }
    }

    /// Rebuilds the payload as a per-file [`CorpusStats`] delta, stamping
    /// the live file name onto its diagnostics. `duplicates` and
    /// `peak_resident_graphs` stay zero — they belong to the run.
    pub fn to_delta(&self, name: &str) -> CorpusStats {
        let mut delta = CorpusStats::default();
        if let Some((stage, error)) = &self.error {
            delta.failures = 1;
            delta.diagnostics.push(AnalysisDiagnostic {
                file: name.to_owned(),
                kind: DiagnosticKind::Frontend {
                    stage: *stage,
                    error: error.clone(),
                },
            });
            return delta;
        }
        delta.files = 1;
        delta.graphs = self.graphs as usize;
        delta.events = self.events as usize;
        delta.edges = self.edges as usize;
        delta.non_converged = self.non_converged.len();
        delta.pta = PtaAggregate::from_parts(
            self.pta_bodies as usize,
            self.pta_passes as usize,
            self.pta_propagations as usize,
            self.pta_constraints as usize,
            self.pta_non_converged as usize,
            self.pta_pass_counts
                .iter()
                .map(|&(p, n)| (p as usize, n as usize)),
        );
        for (func, passes) in &self.non_converged {
            delta.diagnostics.push(AnalysisDiagnostic {
                file: name.to_owned(),
                kind: DiagnosticKind::NonConverged {
                    func: func.clone(),
                    passes: *passes as usize,
                },
            });
        }
        delta
    }
}

/// Durable corpus-score payload: the merged pass-2 result — per-candidate
/// `Γ_S` confidence lists and counters as sorted pair lists (the vendored
/// serde stack cannot key JSON maps by [`Spec`]), the capped provenance
/// index, and the training stats of the model that produced the scores.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ScorePayload {
    /// Per-candidate confidence lists (`Γ_S`), in `Spec` order.
    pub confidences: Vec<(Spec, Vec<f32>)>,
    /// Per-candidate corpus-wide match counts, in `Spec` order.
    pub match_counts: Vec<(Spec, usize)>,
    /// Matches skipped for inducing zero or too many edges.
    pub skipped_multi_edge: usize,
    /// Edges skipped because the model has no ψ for their position pair.
    pub skipped_no_model: usize,
    /// Call-site pairs examined across the corpus.
    pub pairs_examined: usize,
    /// Merged, capped provenance (already serde-flattened internally).
    pub provenance: ProvenanceIndex,
    /// Training stats of the model the scores were computed under.
    pub model_stats: TrainStats,
}

/// Serializes a payload for [`uspec_store::ArtifactStore::put`].
pub fn encode_payload<T: Serialize>(value: &T) -> Vec<u8> {
    serde_json::to_string(value)
        .expect("cache payloads contain no unserializable values")
        .into_bytes()
}

/// Deserializes a stored payload; `None` (a cache miss, not an error) when
/// the bytes do not parse — e.g. an entry from a build whose payload layout
/// predates the current stage tag.
pub fn decode_payload<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Option<T> {
    let text = std::str::from_utf8(bytes).ok()?;
    serde_json::from_str(text).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_lang::{LangErrorKind, Span};

    #[test]
    fn options_fingerprint_tracks_relevant_knobs_only() {
        let base = PipelineOptions::default();
        let fp = options_fingerprint(&base);
        assert_eq!(fp, options_fingerprint(&base), "deterministic");

        // shard_size, score_fn and dirty are streaming/driver details.
        let mut sharded = base.clone();
        sharded.shard_size = 7;
        assert_eq!(fp, options_fingerprint(&sharded));
        let mut dirtied = base.clone();
        dirtied.dirty.push("a.u".into());
        assert_eq!(fp, options_fingerprint(&dirtied));

        // Analysis-relevant knobs invalidate.
        let mut seeded = base.clone();
        seeded.train.seed += 1;
        assert_ne!(fp, options_fingerprint(&seeded));
        let mut capped = base.clone();
        capped.max_diagnostics += 1;
        assert_ne!(fp, options_fingerprint(&capped));
        let mut nodedup = base.clone();
        nodedup.dedup = false;
        assert_ne!(fp, options_fingerprint(&nodedup));
    }

    #[test]
    fn option_fps_isolate_stages() {
        let base = PipelineOptions::default();
        let fps = OptionFps::new(&base);

        // A training-knob change leaves analyze and pairs keys alone: a
        // retrain must not rebuild graphs or blueprints.
        let mut retrained = base.clone();
        retrained.train.seed += 1;
        let rf = OptionFps::new(&retrained);
        assert_eq!(fps.analyze, rf.analyze);
        assert_eq!(fps.pairs, rf.pairs);
        assert_ne!(fps.train, rf.train);

        // Featurization knobs live in both train and pairs fingerprints.
        let mut refeat = base.clone();
        refeat.train.context_depth += 1;
        let ff = OptionFps::new(&refeat);
        assert_ne!(fps.pairs, ff.pairs);
        assert_ne!(fps.train, ff.train);
        assert_eq!(fps.analyze, ff.analyze);

        // An extraction-knob change touches pairs only.
        let mut rex = base.clone();
        rex.extract.max_receiver_distance += 1;
        let xf = OptionFps::new(&rex);
        assert_ne!(fps.pairs, xf.pairs);
        assert_eq!(fps.analyze, xf.analyze);
        assert_eq!(fps.train, xf.train);
    }

    #[test]
    fn job_keys_are_content_local() {
        let opts = PipelineOptions::default();
        let fps = OptionFps::new(&opts);
        let a = content_fingerprint("fn main() {}");
        let b = content_fingerprint("fn main() { }");
        assert_ne!(a, b);

        // Kind separation on identical inputs.
        let keys = [
            analyze_job_key(&fps, a),
            stats_job_key(&fps, a),
            samples_job_key(&fps, a, 0),
            pairs_job_key(&fps, a),
            digest_job_key(&fps, a, 0),
        ];
        for (i, x) in keys.iter().enumerate() {
            for y in &keys[i + 1..] {
                assert_ne!(x, y, "kinds never collide");
            }
        }

        // Content changes every per-file key; index changes samples and
        // digests (samples are index-seeded) but not stats or pairs.
        assert_ne!(stats_job_key(&fps, a), stats_job_key(&fps, b));
        assert_ne!(samples_job_key(&fps, a, 0), samples_job_key(&fps, a, 1));
        assert_ne!(digest_job_key(&fps, a, 0), digest_job_key(&fps, a, 1));
        assert_eq!(pairs_job_key(&fps, a), pairs_job_key(&fps, a));
    }

    #[test]
    fn model_key_is_an_order_sensitive_fold() {
        let opts = PipelineOptions::default();
        let fps = OptionFps::new(&opts);
        // Model keys fold sample *value digests*, not file contents: two
        // files whose extracted samples are identical train one model.
        let a = value_digest(&vec![1u64, 2, 3]);
        let b = value_digest(&vec![4u64, 5]);
        assert_ne!(a, b);
        let k1 = model_job_key(&fps, &[(0, a), (1, b)]);
        assert_eq!(k1, model_job_key(&fps, &[(0, a), (1, b)]));
        // Order, membership and position all matter: the model is trained
        // on index-seeded RNG streams over the kept corpus in order.
        assert_ne!(k1, model_job_key(&fps, &[(1, b), (0, a)]));
        assert_ne!(k1, model_job_key(&fps, &[(0, a)]));
        assert_ne!(k1, model_job_key(&fps, &[(0, a), (2, b)]));
        // And the score key tracks the model, the pairs digests, and the
        // file names evidence cites: a retrain or rename re-scores, an
        // edit that changes neither does not.
        let p = value_digest(&"pairs");
        let kept = vec![(0u64, "a.u".to_owned(), p)];
        let k2 = model_job_key(&fps, &[(0, b), (1, b)]);
        assert_ne!(score_job_key(k1, &kept), score_job_key(k2, &kept));
        let renamed = vec![(0u64, "b.u".to_owned(), p)];
        assert_ne!(score_job_key(k1, &kept), score_job_key(k1, &renamed));
        assert_eq!(score_job_key(k1, &kept), score_job_key(k1, &kept.clone()));
    }

    #[test]
    fn ref_slots_are_config_scoped() {
        let opts_a = options_fingerprint(&PipelineOptions::default());
        let mut other = PipelineOptions::default();
        other.train.seed += 1;
        let opts_b = options_fingerprint(&other);
        assert_ne!(file_ref_slot(opts_a, 0), file_ref_slot(opts_b, 0));
        assert_ne!(file_ref_slot(opts_a, 0), file_ref_slot(opts_a, 1));
        assert_ne!(model_ref_slot(opts_a), model_ref_slot(opts_b));
        assert_ne!(model_ref_slot(opts_a), file_ref_slot(opts_a, 0));
        assert_ne!(score_ref_slot(opts_a), score_ref_slot(opts_b));
        assert_ne!(score_ref_slot(opts_a), model_ref_slot(opts_a));
    }

    #[test]
    fn stats_payload_round_trips_and_stamps_names() {
        let payload = FileStatsPayload {
            graphs: 3,
            events: 40,
            edges: 70,
            pta_bodies: 3,
            pta_passes: 9,
            pta_propagations: 400,
            pta_constraints: 90,
            pta_non_converged: 1,
            pta_pass_counts: vec![(2, 2), (5, 1)],
            non_converged: vec![("main".into(), 5)],
            error: None,
        };
        let back: FileStatsPayload = decode_payload(&encode_payload(&payload)).unwrap();
        let delta = back.to_delta("slow.u");
        assert_eq!(delta.files, 1);
        assert_eq!(delta.graphs, 3);
        assert_eq!(delta.non_converged, 1);
        assert_eq!(delta.duplicates, 0, "run property, not file property");
        assert_eq!(delta.peak_resident_graphs, 0, "run property");
        assert_eq!(delta.pta.bodies, 3);
        assert_eq!(delta.diagnostics.len(), 1);
        assert!(
            delta.diagnostics[0].to_string().contains("slow.u"),
            "name stamped at absorb time: {}",
            delta.diagnostics[0]
        );

        let failed = FileStatsPayload {
            error: Some((
                AnalysisStage::Parse,
                LangError::new(LangErrorKind::UnexpectedChar('~'), Span::new(3, 4)),
            )),
            ..FileStatsPayload::default()
        };
        let back: FileStatsPayload = decode_payload(&encode_payload(&failed)).unwrap();
        let delta = back.to_delta("bad.u");
        assert_eq!((delta.files, delta.failures), (0, 1));
        assert_eq!(delta.diagnostics.len(), 1);
        assert!(delta.diagnostics[0].to_string().contains("bad.u"));
    }

    #[test]
    fn decode_rejects_garbage_as_miss() {
        assert!(decode_payload::<FileStatsPayload>(b"not json").is_none());
        assert!(decode_payload::<FileStatsPayload>(&[0xff, 0xfe]).is_none());
        assert!(decode_payload::<Vec<(String, u64)>>(b"{oops").is_none());
    }
}
