//! Cache keys and payload encodings for the persistent artifact store.
//!
//! A warm run must be **byte-identical** to a cold run, so a cached entry
//! is only usable when *everything* that could influence the stage output
//! went into its key:
//!
//! * the shard's own files — names (they appear in diagnostics) and
//!   content — plus its stable start index (per-file RNG streams key off
//!   stable corpus indices);
//! * the content of **every file before the shard** (the duplicate filter
//!   is stateful across shards: whether a file is analyzed here depends on
//!   whether its content occurred earlier), folded into a rolling *prefix
//!   digest*;
//! * for pass B, the whole corpus digest — the trained edge model is a
//!   function of every file, and candidates are scored with it;
//! * every analysis-relevant [`PipelineOptions`] knob, via
//!   [`options_fingerprint`];
//! * a stage tag with its own payload-layout version, so a payload change
//!   invalidates old entries without touching the envelope format.
//!
//! `shard_size` is deliberately **not** in [`options_fingerprint`]: shard
//! boundaries are captured by the shard digests themselves (a different
//! `shard_size` produces different shards, hence different keys), and the
//! learned result is invariant under it. Likewise `score_fn` — scoring
//! runs after the cached stages, on the merged candidate set.
//!
//! Payloads are flat, stub-serde-friendly structs: `BTreeMap`s become
//! `Vec<(K, V)>` pairs (the vendored serde stack only supports string map
//! keys) and every count is a `u64`. Cached per-shard stats exclude
//! `duplicates` and `peak_resident_graphs`: duplicates are recomputed by
//! the live dedup pass that cache hits still perform, and the resident
//! high-water mark describes *this* run's memory, which a hit never pays.

use serde::{Deserialize, Serialize};
use uspec_corpus::Shard;
use uspec_learn::{CandidateSet, ProvenanceIndex};
use uspec_model::Sample;
use uspec_pta::PtaAggregate;
use uspec_store::{Fingerprint, FpHasher};

use crate::pipeline::{CorpusStats, PipelineOptions};
use crate::stage::AnalysisDiagnostic;

/// Fingerprint of every pipeline option that can influence a cached stage
/// output. Uses the `Debug` renderings of the option structs: each derives
/// `Debug` over all fields, so any knob change (including newly added
/// fields) changes the text and invalidates old entries — a conservative
/// but sound invalidation rule.
pub fn options_fingerprint(opts: &PipelineOptions) -> Fingerprint {
    let mut h = FpHasher::new();
    h.write_str(&format!("{:?}", opts.lower));
    h.write_str(&format!("{:?}", opts.pta));
    h.write_str(&format!("{:?}", opts.graph));
    h.write_str(&format!("{:?}", opts.train));
    h.write_str(&format!("{:?}", opts.extract));
    h.write_u64(u64::from(opts.dedup));
    h.write_u64(opts.max_diagnostics as u64);
    h.digest()
}

/// Digest of one shard: stable start index, file names (diagnostics name
/// files), and file content.
pub fn shard_digest(shard: &Shard) -> Fingerprint {
    let mut h = FpHasher::new();
    h.write_u64(shard.start as u64);
    h.write_u64(shard.files.len() as u64);
    for (name, source) in &shard.files {
        h.write_str(name);
        h.write_str(source);
    }
    h.digest()
}

/// Folds one shard's file *content* into the rolling prefix hasher (names
/// do not affect duplicate decisions).
pub fn roll_shard(rolling: &mut FpHasher, shard: &Shard) {
    for (_, source) in &shard.files {
        rolling.write_str(source);
    }
}

/// Key of a shard's pass-A entry (analysis stats delta + training
/// samples). `prefix` is the rolling digest of all prior file content.
pub fn analyze_key(
    opts_fp: Fingerprint,
    prefix: Fingerprint,
    shard_fp: Fingerprint,
) -> Fingerprint {
    let mut h = FpHasher::new();
    h.write_str("analyze+sample:v1");
    h.write_fingerprint(opts_fp);
    h.write_fingerprint(prefix);
    h.write_fingerprint(shard_fp);
    h.digest()
}

/// Key of the trained edge model. `corpus` is the digest of the entire
/// corpus content: the model is a function of every training sample, and
/// the samples are a function of every file (order included — per-file RNG
/// streams key off stable corpus indices).
pub fn model_key(opts_fp: Fingerprint, corpus: Fingerprint) -> Fingerprint {
    let mut h = FpHasher::new();
    h.write_str("model:v1");
    h.write_fingerprint(opts_fp);
    h.write_fingerprint(corpus);
    h.digest()
}

/// Key of a shard's pass-B entry (extracted candidates). `corpus` is the
/// digest of the *entire* corpus content — the identity of the trained
/// model the candidates were scored with.
pub fn extract_key(
    opts_fp: Fingerprint,
    corpus: Fingerprint,
    prefix: Fingerprint,
    shard_fp: Fingerprint,
) -> Fingerprint {
    let mut h = FpHasher::new();
    h.write_str("extract:v2");
    h.write_fingerprint(opts_fp);
    h.write_fingerprint(corpus);
    h.write_fingerprint(prefix);
    h.write_fingerprint(shard_fp);
    h.digest()
}

/// Flat encoding of a per-shard [`CorpusStats`] delta.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StatsDelta {
    /// Files successfully analyzed.
    pub files: u64,
    /// Files that failed to parse or lower.
    pub failures: u64,
    /// Event graphs.
    pub graphs: u64,
    /// Total events.
    pub events: u64,
    /// Total edges.
    pub edges: u64,
    /// Non-converged function bodies.
    pub non_converged: u64,
    /// [`PtaAggregate::bodies`].
    pub pta_bodies: u64,
    /// [`PtaAggregate::passes`].
    pub pta_passes: u64,
    /// [`PtaAggregate::propagations`].
    pub pta_propagations: u64,
    /// [`PtaAggregate::constraints`].
    pub pta_constraints: u64,
    /// [`PtaAggregate::non_converged`].
    pub pta_non_converged: u64,
    /// Pass-count histogram as `(passes, bodies)` pairs.
    pub pta_pass_counts: Vec<(u64, u64)>,
    /// The shard's structured diagnostics, in corpus order, capped at
    /// `max_diagnostics` within the shard.
    pub diagnostics: Vec<AnalysisDiagnostic>,
}

impl StatsDelta {
    /// Captures a per-shard delta (`duplicates` / `peak_resident_graphs`
    /// intentionally dropped — see the module docs).
    pub fn from_stats(stats: &CorpusStats) -> StatsDelta {
        StatsDelta {
            files: stats.files as u64,
            failures: stats.failures as u64,
            graphs: stats.graphs as u64,
            events: stats.events as u64,
            edges: stats.edges as u64,
            non_converged: stats.non_converged as u64,
            pta_bodies: stats.pta.bodies as u64,
            pta_passes: stats.pta.passes as u64,
            pta_propagations: stats.pta.propagations as u64,
            pta_constraints: stats.pta.constraints as u64,
            pta_non_converged: stats.pta.non_converged as u64,
            pta_pass_counts: stats
                .pta
                .pass_histogram()
                .iter()
                .map(|(&p, &n)| (p as u64, n as u64))
                .collect(),
            diagnostics: stats.diagnostics.clone(),
        }
    }

    /// Rebuilds the delta as a [`CorpusStats`] (with `duplicates` and
    /// `peak_resident_graphs` zero, to be filled by the live run).
    pub fn into_stats(self) -> CorpusStats {
        CorpusStats {
            files: self.files as usize,
            failures: self.failures as usize,
            duplicates: 0,
            graphs: self.graphs as usize,
            events: self.events as usize,
            edges: self.edges as usize,
            non_converged: self.non_converged as usize,
            peak_resident_graphs: 0,
            pta: PtaAggregate::from_parts(
                self.pta_bodies as usize,
                self.pta_passes as usize,
                self.pta_propagations as usize,
                self.pta_constraints as usize,
                self.pta_non_converged as usize,
                self.pta_pass_counts
                    .into_iter()
                    .map(|(p, n)| (p as usize, n as usize)),
            ),
            diagnostics: self.diagnostics,
        }
    }
}

/// Pass-A payload: one shard's analysis outcome and training samples.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardAnalysisPayload {
    /// The shard's stats delta.
    pub stats: StatsDelta,
    /// The shard's §4.2 training samples, in stable corpus order.
    pub samples: Vec<Sample>,
}

/// Pass-B payload: one shard's candidate extraction.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ShardExtractPayload {
    /// Per-candidate Γ_S confidence lists as `(spec, confidences)` pairs,
    /// in `Spec` order.
    pub confidences: Vec<(uspec_pta::Spec, Vec<f32>)>,
    /// Per-candidate match counts as `(spec, count)` pairs, in `Spec`
    /// order.
    pub match_counts: Vec<(uspec_pta::Spec, u64)>,
    /// [`CandidateSet::skipped_multi_edge`].
    pub skipped_multi_edge: u64,
    /// [`CandidateSet::skipped_no_model`].
    pub skipped_no_model: u64,
    /// [`CandidateSet::pairs_examined`].
    pub pairs_examined: u64,
    /// Event graphs the live run built for this shard — replayed into the
    /// `graph.*` counters on hits (those counters are part of the report's
    /// invariant section, so a hit must account for the work it skipped).
    pub graphs: u64,
    /// Total events across those graphs (see `graphs`).
    pub events: u64,
    /// Total edges across those graphs (see `graphs`).
    pub edges: u64,
    /// The shard's evidence index, pre-counterfactual (counterfactuals are
    /// a whole-corpus computation attached after every shard merged).
    pub provenance: ProvenanceIndex,
}

impl ShardExtractPayload {
    /// Captures one shard's candidate set and evidence; `stats` is the
    /// shard's analysis delta, from which the graph counts are taken.
    pub fn from_candidates(
        set: &CandidateSet,
        provenance: &ProvenanceIndex,
        stats: &CorpusStats,
    ) -> ShardExtractPayload {
        ShardExtractPayload {
            confidences: set
                .confidences
                .iter()
                .map(|(s, gs)| (*s, gs.clone()))
                .collect(),
            match_counts: set
                .match_counts
                .iter()
                .map(|(s, &n)| (*s, n as u64))
                .collect(),
            skipped_multi_edge: set.skipped_multi_edge as u64,
            skipped_no_model: set.skipped_no_model as u64,
            pairs_examined: set.pairs_examined as u64,
            graphs: stats.graphs as u64,
            events: stats.events as u64,
            edges: stats.edges as u64,
            provenance: provenance.clone(),
        }
    }

    /// Rebuilds the candidate set and the shard's evidence index.
    pub fn into_parts(self) -> (CandidateSet, ProvenanceIndex) {
        let set = CandidateSet {
            confidences: self.confidences.into_iter().collect(),
            match_counts: self
                .match_counts
                .into_iter()
                .map(|(s, n)| (s, n as usize))
                .collect(),
            skipped_multi_edge: self.skipped_multi_edge as usize,
            skipped_no_model: self.skipped_no_model as usize,
            pairs_examined: self.pairs_examined as usize,
        };
        (set, self.provenance)
    }
}

/// Serializes a payload for [`uspec_store::ArtifactStore::put`].
pub fn encode_payload<T: Serialize>(value: &T) -> Vec<u8> {
    serde_json::to_string(value)
        .expect("cache payloads contain no unserializable values")
        .into_bytes()
}

/// Deserializes a stored payload; `None` (a cache miss, not an error) when
/// the bytes do not parse — e.g. an entry from a build whose payload layout
/// predates the current stage tag.
pub fn decode_payload<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Option<T> {
    let text = std::str::from_utf8(bytes).ok()?;
    serde_json::from_str(text).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{AnalysisStage, DiagnosticKind};
    use uspec_lang::{LangError, LangErrorKind, MethodId, Span};
    use uspec_pta::Spec;

    #[test]
    fn options_fingerprint_tracks_relevant_knobs_only() {
        let base = PipelineOptions::default();
        let fp = options_fingerprint(&base);
        assert_eq!(fp, options_fingerprint(&base), "deterministic");

        // shard_size and score_fn are streaming/post-processing details.
        let mut sharded = base.clone();
        sharded.shard_size = 7;
        assert_eq!(fp, options_fingerprint(&sharded));

        // Analysis-relevant knobs invalidate.
        let mut seeded = base.clone();
        seeded.train.seed += 1;
        assert_ne!(fp, options_fingerprint(&seeded));
        let mut capped = base.clone();
        capped.max_diagnostics += 1;
        assert_ne!(fp, options_fingerprint(&capped));
        let mut nodedup = base.clone();
        nodedup.dedup = false;
        assert_ne!(fp, options_fingerprint(&nodedup));
    }

    #[test]
    fn shard_digest_covers_start_names_and_content() {
        let shard = Shard {
            start: 3,
            files: vec![("a.u".into(), "fn main() {}".into())],
        };
        let fp = shard_digest(&shard);
        let mut moved = shard.clone();
        moved.start = 4;
        assert_ne!(fp, shard_digest(&moved));
        let mut renamed = shard.clone();
        renamed.files[0].0 = "b.u".into();
        assert_ne!(fp, shard_digest(&renamed));
        let mut edited = shard.clone();
        edited.files[0].1.push(' ');
        assert_ne!(fp, shard_digest(&edited));
    }

    #[test]
    fn keys_are_stage_separated() {
        let fp = fingerprint_parts();
        let ka = analyze_key(fp.0, fp.1, fp.2);
        let kb = extract_key(fp.0, fp.1, fp.1, fp.2);
        assert_ne!(ka, kb, "pass A and pass B entries never collide");
        // A different prefix (earlier corpus content) changes both.
        assert_ne!(ka, analyze_key(fp.0, fp.2, fp.2));
        assert_ne!(kb, extract_key(fp.0, fp.1, fp.2, fp.2));
    }

    fn fingerprint_parts() -> (Fingerprint, Fingerprint, Fingerprint) {
        (
            uspec_store::fingerprint_str("opts"),
            uspec_store::fingerprint_str("prefix"),
            uspec_store::fingerprint_str("shard"),
        )
    }

    #[test]
    fn stats_delta_round_trips_through_json() {
        let mut stats = CorpusStats {
            files: 9,
            failures: 2,
            duplicates: 5,
            graphs: 11,
            events: 40,
            edges: 70,
            non_converged: 1,
            peak_resident_graphs: 11,
            pta: PtaAggregate::from_parts(12, 30, 400, 90, 1, [(2, 10), (5, 2)]),
            diagnostics: Vec::new(),
        };
        stats.diagnostics.push(AnalysisDiagnostic {
            file: "bad.u".into(),
            kind: DiagnosticKind::Frontend {
                stage: AnalysisStage::Parse,
                error: LangError::new(LangErrorKind::UnexpectedChar('~'), Span::new(3, 4)),
            },
        });
        stats.diagnostics.push(AnalysisDiagnostic {
            file: "slow.u".into(),
            kind: DiagnosticKind::NonConverged {
                func: "main".into(),
                passes: 64,
            },
        });

        let delta = StatsDelta::from_stats(&stats);
        let back: StatsDelta = decode_payload(&encode_payload(&delta)).unwrap();
        let rebuilt = back.into_stats();
        assert_eq!(rebuilt.files, stats.files);
        assert_eq!(rebuilt.failures, stats.failures);
        assert_eq!(rebuilt.duplicates, 0, "recomputed live on hits");
        assert_eq!(rebuilt.peak_resident_graphs, 0, "not resident on hits");
        assert_eq!(rebuilt.pta, stats.pta);
        assert_eq!(rebuilt.diagnostics.len(), 2);
        assert_eq!(
            rebuilt.diagnostics[0].to_string(),
            stats.diagnostics[0].to_string()
        );
        assert_eq!(
            rebuilt.diagnostics[1].to_string(),
            stats.diagnostics[1].to_string()
        );
    }

    #[test]
    fn extract_payload_round_trips_candidates() {
        let get = MethodId::new("java.util.HashMap", "get", 1);
        let put = MethodId::new("java.util.HashMap", "put", 2);
        let mut set = CandidateSet::default();
        set.confidences
            .insert(Spec::RetSame { method: get }, vec![0.25, 0.875]);
        set.confidences.insert(
            Spec::RetArg {
                target: get,
                source: put,
                x: 2,
            },
            vec![0.5],
        );
        set.match_counts.insert(Spec::RetSame { method: get }, 2);
        set.match_counts.insert(
            Spec::RetArg {
                target: get,
                source: put,
                x: 2,
            },
            1,
        );
        set.skipped_multi_edge = 3;
        set.skipped_no_model = 1;
        set.pairs_examined = 120;

        let stats = CorpusStats {
            graphs: 7,
            events: 31,
            edges: 44,
            ..CorpusStats::default()
        };
        let mut prov = uspec_learn::ProvenanceIndex::default();
        prov.record(
            Spec::RetSame { method: get },
            uspec_learn::EvidenceRecord {
                key: uspec_learn::EvidenceKey::default(),
                file: "a.u".into(),
                line_src: 3,
                line_dst: 5,
                kind: "RetSame".into(),
                src_event: "HashMap.get/1@ret".into(),
                dst_event: "HashMap.get/1@ret".into(),
                conf: 0.875,
                margin: 1.9459102,
                bias: -0.125,
                contributions: vec![("gamma ty recv".into(), 0.5)],
            },
        );
        let payload = ShardExtractPayload::from_candidates(&set, &prov, &stats);
        let back: ShardExtractPayload = decode_payload(&encode_payload(&payload)).unwrap();
        assert_eq!((back.graphs, back.events, back.edges), (7, 31, 44));
        let (rebuilt, rebuilt_prov) = back.into_parts();
        assert_eq!(rebuilt.confidences, set.confidences, "f32 bit-exact");
        assert_eq!(rebuilt.match_counts, set.match_counts);
        assert_eq!(rebuilt.skipped_multi_edge, 3);
        assert_eq!(rebuilt.pairs_examined, 120);
        let sp = rebuilt_prov.get(&Spec::RetSame { method: get }).unwrap();
        assert_eq!(sp.total, 1);
        assert_eq!(sp.evidence[0].margin.to_bits(), 1.9459102f32.to_bits());
        assert_eq!(sp.evidence[0].file, "a.u");
    }

    #[test]
    fn decode_rejects_garbage_as_miss() {
        assert!(decode_payload::<StatsDelta>(b"not json").is_none());
        assert!(decode_payload::<StatsDelta>(&[0xff, 0xfe]).is_none());
        assert!(decode_payload::<ShardExtractPayload>(b"{}").is_none());
    }
}
