//! The pipeline's job definitions for the demand-driven engine.
//!
//! Each stage of Fig. 1 is one [`Job`] implementation over the
//! [`uspec_jobs::JobEngine`], keyed per the discipline in [`crate::cache`]:
//!
//! * [`AnalyzeJob`] — parse/lower/PTA/graph-build one file (in-memory);
//! * [`StatsJob`] — the file's durable, name-free [`FileStatsPayload`];
//! * [`SamplesJob`] — the file's §4.2 training samples (durable);
//! * [`PairsJob`] — the file's model-independent pair blueprints (durable);
//! * [`DigestJob`] — the file's samples + pairs value digests (durable,
//!   tiny — the record early cutoff compares);
//! * [`ModelJob`] — the edge model ϕ as a fold over per-file samples;
//! * [`ScoreJob`] — the corpus-level merge of every kept file's
//!   blueprints scored under one model (durable).
//!
//! Derived jobs demand [`AnalyzeJob`] through their context rather than
//! calling the frontend directly, so one analysis serves stats, samples
//! and pairs while the file's graphs are resident — and is skipped
//! entirely when all three resolve from the durable store.

use std::collections::HashSet;

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use uspec_corpus::{shards, CorpusSource};
use uspec_jobs::{Job, JobCx, JobKind};
use uspec_lang::registry::ApiTable;
use uspec_learn::{
    score_blueprints_into, BlueprintExtractor, CandidateSet, FileBlueprints, ProvenanceIndex,
};
use uspec_model::seed::mix_seed;
use uspec_model::{extract_samples, EdgeModel, ModelSnapshot, Sample, TrainStats};
use uspec_pta::SpecDb;
use uspec_store::Fingerprint;

use crate::cache::{
    analyze_job_key, content_fingerprint, decode_payload, digest_job_key, encode_payload,
    pairs_job_key, samples_job_key, stats_job_key, value_digest, FileStatsPayload, OptionFps,
    ScorePayload,
};
use crate::pipeline::{analyze_source_staged, PipelineOptions};
use crate::stage::FileAnalysis;

/// Shared identity of one kept corpus file across its per-file jobs: the
/// borrowed inputs plus the precomputed content fingerprint.
#[derive(Clone, Copy)]
pub struct FileJob<'a> {
    /// Stable corpus index (seeds the file's RNG streams).
    pub index: u64,
    /// File name — never part of durable keys; evidence and diagnostics
    /// identity only.
    pub name: &'a str,
    /// The file's source text.
    pub source: &'a str,
    /// The API registry.
    pub table: &'a ApiTable,
    /// The run's options.
    pub opts: &'a PipelineOptions,
    /// The run's option fingerprints.
    pub fps: &'a OptionFps,
    /// Content fingerprint of `source`.
    pub content: Fingerprint,
}

impl<'a> FileJob<'a> {
    /// Builds the per-file job identity, fingerprinting `source`.
    pub fn new(
        index: usize,
        name: &'a str,
        source: &'a str,
        table: &'a ApiTable,
        opts: &'a PipelineOptions,
        fps: &'a OptionFps,
    ) -> FileJob<'a> {
        FileJob {
            index: index as u64,
            name,
            source,
            table,
            opts,
            fps,
            content: content_fingerprint(source),
        }
    }
}

/// Parse + lower + per-body points-to analysis + event-graph build for one
/// file. In-memory only: graphs are large and cheap to rebuild relative to
/// their serialized size, so the driver evicts them at shard boundaries.
pub struct AnalyzeJob<'a>(pub FileJob<'a>);

impl Job for AnalyzeJob<'_> {
    type Output = FileAnalysis;

    fn kind(&self) -> JobKind {
        JobKind::Analyze
    }

    fn key(&self) -> Fingerprint {
        analyze_job_key(self.0.fps, self.0.content)
    }

    fn run(&self, _cx: &JobCx<'_, '_>) -> FileAnalysis {
        analyze_source_staged(self.0.source, self.0.table, &SpecDb::empty(), self.0.opts)
    }
}

/// One file's durable [`FileStatsPayload`] — the corpus-stats delta the
/// driver folds, name-free so renames stay warm.
pub struct StatsJob<'a>(pub FileJob<'a>);

impl Job for StatsJob<'_> {
    type Output = FileStatsPayload;
    const DURABLE: bool = true;

    fn kind(&self) -> JobKind {
        JobKind::Stats
    }

    fn key(&self) -> Fingerprint {
        stats_job_key(self.0.fps, self.0.content)
    }

    fn run(&self, cx: &JobCx<'_, '_>) -> FileStatsPayload {
        let analysis = cx.demand(&AnalyzeJob(self.0));
        FileStatsPayload::from_analysis(&analysis.value)
    }

    fn encode(out: &FileStatsPayload) -> Option<Vec<u8>> {
        Some(encode_payload(out))
    }

    fn decode(bytes: &[u8]) -> Option<FileStatsPayload> {
        decode_payload(bytes)
    }
}

/// One file's §4.2 training samples, in stable `(file, graph)` RNG-stream
/// order. Failed files contribute an empty sample set.
pub struct SamplesJob<'a>(pub FileJob<'a>);

impl Job for SamplesJob<'_> {
    type Output = Vec<Sample>;
    const DURABLE: bool = true;

    fn kind(&self) -> JobKind {
        JobKind::Samples
    }

    fn key(&self) -> Fingerprint {
        samples_job_key(self.0.fps, self.0.content, self.0.index)
    }

    fn run(&self, cx: &JobCx<'_, '_>) -> Vec<Sample> {
        let analysis = cx.demand(&AnalyzeJob(self.0));
        let Ok(file) = &*analysis.value else {
            return Vec::new();
        };
        let file_seed = mix_seed(self.0.opts.train.seed, self.0.index);
        let mut samples = Vec::new();
        for (j, g) in file.graphs.iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(mix_seed(file_seed, j as u64));
            samples.extend(extract_samples(g, &mut rng, &self.0.opts.train));
        }
        samples
    }

    fn encode(out: &Vec<Sample>) -> Option<Vec<u8>> {
        Some(encode_payload(out))
    }

    fn decode(bytes: &[u8]) -> Option<Vec<Sample>> {
        decode_payload(bytes)
    }
}

/// One file's model-independent pair blueprints (the enumeration half of
/// Alg. 1). Durable and keyed without the model: a retrain re-scores
/// blueprints, it never re-enumerates them.
pub struct PairsJob<'a>(pub FileJob<'a>);

impl Job for PairsJob<'_> {
    type Output = FileBlueprints;
    const DURABLE: bool = true;

    fn kind(&self) -> JobKind {
        JobKind::Pairs
    }

    fn key(&self) -> Fingerprint {
        pairs_job_key(self.0.fps, self.0.content)
    }

    fn run(&self, cx: &JobCx<'_, '_>) -> FileBlueprints {
        let analysis = cx.demand(&AnalyzeJob(self.0));
        let Ok(file) = &*analysis.value else {
            return FileBlueprints::default();
        };
        let mut bp = BlueprintExtractor::new(
            self.0.opts.extract.clone(),
            self.0.opts.train.full_contexts,
            self.0.opts.train.context_depth,
        );
        for g in &file.graphs {
            bp.add_graph(g);
        }
        bp.finish()
    }

    fn encode(out: &FileBlueprints) -> Option<Vec<u8>> {
        Some(encode_payload(out))
    }

    fn decode(bytes: &[u8]) -> Option<FileBlueprints> {
        decode_payload(bytes)
    }
}

/// One file's samples + pairs **value digests** — the tiny durable record
/// early cutoff reads instead of the payloads themselves. A changed file
/// computes digests alongside its samples and blueprints in one resident
/// pass (the run demands both siblings while the analysis memo is warm);
/// an unchanged file resolves them from the store without decoding a
/// single sample. Downstream, the model key folds the samples digests and
/// the score key folds the pairs digests, so an edit whose derivatives
/// come out identical stops propagating right here.
pub struct DigestJob<'a>(pub FileJob<'a>);

impl Job for DigestJob<'_> {
    type Output = (Fingerprint, Fingerprint);
    const DURABLE: bool = true;

    fn kind(&self) -> JobKind {
        JobKind::Digest
    }

    fn key(&self) -> Fingerprint {
        digest_job_key(self.0.fps, self.0.content, self.0.index)
    }

    fn run(&self, cx: &JobCx<'_, '_>) -> (Fingerprint, Fingerprint) {
        let samples = cx.demand(&SamplesJob(self.0));
        let pairs = cx.demand(&PairsJob(self.0));
        (value_digest(&*samples.value), value_digest(&*pairs.value))
    }

    fn encode(out: &(Fingerprint, Fingerprint)) -> Option<Vec<u8>> {
        Some(encode_payload(&(out.0.hex(), out.1.hex())))
    }

    fn decode(bytes: &[u8]) -> Option<(Fingerprint, Fingerprint)> {
        let (samples, pairs): (String, String) = decode_payload(bytes)?;
        Some((
            Fingerprint::from_hex(&samples)?,
            Fingerprint::from_hex(&pairs)?,
        ))
    }
}

/// The trained edge model ϕ: an associative fold over the kept files'
/// sample sets, in corpus order, followed by sequential SGD (the paper's
/// single Vowpal Wabbit instance).
///
/// The job holds the corpus *source*, not materialized samples: on a store
/// hit nothing is regenerated, and on a miss shards are re-streamed one at
/// a time, demanding each kept file's [`SamplesJob`] — a memo hit when the
/// driver just produced it, a store decode on the warm edit path.
pub struct ModelJob<'a, S: CorpusSource + Sync + ?Sized> {
    /// The corpus to stream samples from.
    pub source: &'a S,
    /// The API registry.
    pub table: &'a ApiTable,
    /// The run's options.
    pub opts: &'a PipelineOptions,
    /// The run's option fingerprints.
    pub fps: &'a OptionFps,
    /// The kept files' `(index, samples value digest)` list, corpus order.
    pub kept: &'a [(u64, Fingerprint)],
    /// The precomputed model key (a fold over `kept`; see
    /// [`crate::cache::model_job_key`]).
    pub key: Fingerprint,
}

impl<S: CorpusSource + Sync + ?Sized> Job for ModelJob<'_, S> {
    type Output = EdgeModel;
    const DURABLE: bool = true;

    fn kind(&self) -> JobKind {
        JobKind::Model
    }

    fn key(&self) -> Fingerprint {
        self.key
    }

    fn run(&self, cx: &JobCx<'_, '_>) -> EdgeModel {
        let kept: HashSet<u64> = self.kept.iter().map(|&(i, _)| i).collect();
        let mut samples: Vec<Sample> = Vec::new();
        for shard in shards(self.source, self.opts.shard_size) {
            let jobs: Vec<SamplesJob<'_>> = shard
                .iter()
                .filter(|(idx, _, _)| kept.contains(&(*idx as u64)))
                .map(|(idx, name, src)| {
                    SamplesJob(FileJob::new(
                        idx, name, src, self.table, self.opts, self.fps,
                    ))
                })
                .collect();
            for r in cx.demand_par(&jobs) {
                samples.extend_from_slice(&r.value);
            }
        }
        let _span = uspec_telemetry::span!("stage.train", "samples={}", samples.len());
        EdgeModel::train(&samples, &self.opts.train)
    }

    fn encode(out: &EdgeModel) -> Option<Vec<u8>> {
        Some(encode_payload(&out.snapshot()))
    }

    fn decode(bytes: &[u8]) -> Option<EdgeModel> {
        decode_payload::<ModelSnapshot>(bytes).map(EdgeModel::from_snapshot)
    }
}

/// The merged pass-2 result as one value: everything downstream of the
/// model that [`crate::pipeline::PipelineResult`] needs.
#[derive(Clone, Debug, Default)]
pub struct ScoredCorpus {
    /// The merged candidate set (`Γ_S` lists plus counters).
    pub candidates: CandidateSet,
    /// The merged, capped provenance index.
    pub provenance: ProvenanceIndex,
    /// Training stats of the model the scores were computed under —
    /// carried here so a warm run never decodes the model itself.
    pub model_stats: TrainStats,
}

impl ScoredCorpus {
    fn to_payload(&self) -> ScorePayload {
        ScorePayload {
            confidences: self
                .candidates
                .confidences
                .iter()
                .map(|(s, v)| (*s, v.clone()))
                .collect(),
            match_counts: self
                .candidates
                .match_counts
                .iter()
                .map(|(&s, &n)| (s, n))
                .collect(),
            skipped_multi_edge: self.candidates.skipped_multi_edge,
            skipped_no_model: self.candidates.skipped_no_model,
            pairs_examined: self.candidates.pairs_examined,
            provenance: self.provenance.clone(),
            model_stats: self.model_stats.clone(),
        }
    }

    fn from_payload(p: ScorePayload) -> ScoredCorpus {
        ScoredCorpus {
            candidates: CandidateSet {
                confidences: p.confidences.into_iter().collect(),
                match_counts: p.match_counts.into_iter().collect(),
                skipped_multi_edge: p.skipped_multi_edge,
                skipped_no_model: p.skipped_no_model,
                pairs_examined: p.pairs_examined,
            },
            provenance: p.provenance,
            model_stats: p.model_stats,
        }
    }
}

/// The corpus score artifact (the scoring half of Alg. 1, merged in corpus
/// order, plus the provenance cap). Durable and keyed on the model key and
/// each kept file's `(index, name, pairs value digest)` — see
/// [`crate::cache::score_job_key`] — so a warm rerun of an unchanged
/// corpus resolves all of pass 2, training stats included, from one store
/// read without decoding the model or any file's blueprints. On a miss it
/// demands [`ModelJob`], then re-streams the corpus shard by shard,
/// scoring each kept file's [`PairsJob`] output.
pub struct ScoreJob<'a, S: CorpusSource + Sync + ?Sized> {
    /// The corpus to stream blueprints from.
    pub source: &'a S,
    /// The API registry.
    pub table: &'a ApiTable,
    /// The run's options.
    pub opts: &'a PipelineOptions,
    /// The run's option fingerprints.
    pub fps: &'a OptionFps,
    /// The kept files' `(index, samples value digest)` list, corpus order
    /// — the model fold's identity, reused to construct the inner
    /// [`ModelJob`] on a miss.
    pub kept: &'a [(u64, Fingerprint)],
    /// The precomputed model key.
    pub model_key: Fingerprint,
    /// The precomputed score key (a fold over kept names and pairs
    /// digests; see [`crate::cache::score_job_key`]).
    pub key: Fingerprint,
}

impl<S: CorpusSource + Sync + ?Sized> Job for ScoreJob<'_, S> {
    type Output = ScoredCorpus;
    const DURABLE: bool = true;

    fn kind(&self) -> JobKind {
        JobKind::Score
    }

    fn key(&self) -> Fingerprint {
        self.key
    }

    fn run(&self, cx: &JobCx<'_, '_>) -> ScoredCorpus {
        let model = cx.demand(&ModelJob {
            source: self.source,
            table: self.table,
            opts: self.opts,
            fps: self.fps,
            kept: self.kept,
            key: self.model_key,
        });
        let kept: HashSet<u64> = self.kept.iter().map(|&(i, _)| i).collect();
        let mut candidates = CandidateSet::default();
        let mut provenance = ProvenanceIndex::default();
        for shard in shards(self.source, self.opts.shard_size) {
            let files: Vec<FileJob<'_>> = shard
                .iter()
                .filter(|(idx, _, _)| kept.contains(&(*idx as u64)))
                .map(|(idx, name, src)| {
                    FileJob::new(idx, name, src, self.table, self.opts, self.fps)
                })
                .collect();
            let jobs: Vec<PairsJob<'_>> = files.iter().map(|&f| PairsJob(f)).collect();
            for (r, f) in cx.demand_par(&jobs).into_iter().zip(&files) {
                score_blueprints_into(
                    &model.value,
                    f.index,
                    f.name,
                    &r.value,
                    &mut candidates,
                    &mut provenance,
                );
            }
        }
        ScoredCorpus {
            candidates,
            provenance,
            model_stats: model.value.stats().clone(),
        }
    }

    fn encode(out: &ScoredCorpus) -> Option<Vec<u8>> {
        Some(encode_payload(&out.to_payload()))
    }

    fn decode(bytes: &[u8]) -> Option<ScoredCorpus> {
        decode_payload::<ScorePayload>(bytes).map(ScoredCorpus::from_payload)
    }
}
