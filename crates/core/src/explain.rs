//! Shared assembly of spec explanations.
//!
//! `uspec explain` (batch CLI) and the `explain` method of `uspec serve`
//! must produce **byte-identical** JSON for the same learned result — the
//! serve bench asserts it. The only way to guarantee that is one producer:
//! both callers build their entries here and serialize the same structs.

use serde::Serialize;
use uspec_learn::{Counterfactual, EvidenceRecord, LearnedSpecs, ProvenanceIndex};

/// One spec's explanation, as serialized by `uspec explain --json` and the
/// serve protocol's `explain` method.
#[derive(Debug, Clone, Serialize)]
pub struct ExplainEntry {
    /// Rendered spec (`Display` of [`uspec_pta::Spec`]).
    pub spec: String,
    /// Selection score of the spec (0 when unscored).
    pub score: f64,
    /// Corpus match count backing the score.
    pub matches: u64,
    /// Scored induced edges recorded for the spec, including capped-out.
    pub evidence_total: u64,
    /// Records dropped by the per-spec evidence cap.
    pub evidence_overflow: u64,
    /// Retained evidence records (corpus file:line, features, margins).
    pub evidence: Vec<EvidenceRecord>,
    /// Score without the strongest edge, when recorded.
    pub counterfactual: Option<Counterfactual>,
}

/// Builds the explanation entries for every provenance-carrying spec whose
/// rendered form contains `query` (`None` selects all), in the provenance
/// index's deterministic spec order.
pub fn explain_entries(
    learned: &LearnedSpecs,
    provenance: &ProvenanceIndex,
    query: Option<&str>,
) -> Vec<ExplainEntry> {
    provenance
        .iter()
        .filter(|(spec, _)| query.is_none_or(|q| spec.to_string().contains(q)))
        .map(|(spec, sp)| {
            let scored = learned.get(spec);
            ExplainEntry {
                spec: spec.to_string(),
                score: scored.map_or(0.0, |s| s.score),
                matches: scored.map_or(0, |s| s.matches as u64),
                evidence_total: sp.total,
                evidence_overflow: sp.overflow(),
                evidence: sp.evidence.clone(),
                counterfactual: sp.counterfactual.clone(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_pipeline, PipelineOptions};
    use uspec_corpus::{generate_corpus, java_library, GenOptions};

    #[test]
    fn entries_follow_provenance_and_filter_by_substring() {
        let lib = java_library();
        let files = generate_corpus(
            &lib,
            &GenOptions {
                num_files: 60,
                seed: 3,
                ..GenOptions::default()
            },
        );
        let sources: Vec<(String, String)> =
            files.into_iter().map(|f| (f.name, f.source)).collect();
        let result = run_pipeline(&sources, &lib.api_table(), &PipelineOptions::default());

        let all = explain_entries(&result.learned, &result.provenance, None);
        assert_eq!(all.len(), result.provenance.len());
        for e in &all {
            assert_eq!(
                e.evidence_overflow,
                e.evidence_total - e.evidence.len() as u64
            );
        }
        let ret_arg = explain_entries(&result.learned, &result.provenance, Some("RetArg"));
        assert!(ret_arg.iter().all(|e| e.spec.contains("RetArg")));
        assert!(ret_arg.len() <= all.len());
        let none = explain_entries(&result.learned, &result.provenance, Some("NoSuchSpec"));
        assert!(none.is_empty());
    }
}
