//! Evaluation machinery: precision/recall over ground truth (§7.2) and the
//! call-site diff classification of Tab. 4 (§7.3).

use rayon::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use uspec_lang::lower::lower_program;
use uspec_lang::mir::CallSite;
use uspec_lang::parser::parse;
use uspec_lang::registry::ApiTable;
use uspec_lang::MethodId;
use uspec_learn::LearnedSpecs;
use uspec_pta::{
    GhostField, GhostMode, InstrRecord, ObjId, ObjKind, ObjPool, Pta, PtaOptions, Spec, SpecDb,
    Value,
};

use crate::pipeline::PipelineOptions;

/// One point of the Fig. 7 precision/recall curve.
#[derive(Clone, Copy, Debug)]
pub struct PrPoint {
    /// Selection threshold τ.
    pub tau: f64,
    /// Fraction of valid specifications among the selected ones.
    pub precision: f64,
    /// Fraction of selected candidates among the valid ones.
    pub recall: f64,
    /// Number of selected candidates.
    pub selected: usize,
    /// Number of selected candidates that are valid.
    pub valid_selected: usize,
}

/// Computes precision and recall of τ-selection against a validity oracle,
/// exactly as §7.2 defines them: precision is the valid fraction of the
/// selected set, recall the selected fraction of the valid set.
pub fn precision_recall(
    learned: &LearnedSpecs,
    is_valid: impl Fn(&Spec) -> bool,
    taus: &[f64],
) -> Vec<PrPoint> {
    let labels: Vec<(f64, bool)> = learned
        .scored
        .iter()
        .map(|s| (s.score, is_valid(&s.spec)))
        .collect();
    let valid_total = labels.iter().filter(|(_, v)| *v).count();
    taus.iter()
        .map(|&tau| {
            let selected: Vec<&(f64, bool)> =
                labels.iter().filter(|(score, _)| *score >= tau).collect();
            let valid_selected = selected.iter().filter(|(_, v)| *v).count();
            let precision = if selected.is_empty() {
                1.0
            } else {
                valid_selected as f64 / selected.len() as f64
            };
            let recall = if valid_total == 0 {
                1.0
            } else {
                valid_selected as f64 / valid_total as f64
            };
            PrPoint {
                tau,
                precision,
                recall,
                selected: selected.len(),
                valid_selected,
            }
        })
        .collect()
}

/// A stable, run-independent key for an abstract object, so points-to sets
/// from *different* analysis runs (baseline / learned / oracle) can be
/// compared.
pub fn stable_obj_key(pool: &ObjPool, o: ObjId) -> String {
    let obj = pool.get(o);
    let site = |s: CallSite| format!("{}c{}", s.node.0, s.ctx.0);
    match &obj.kind {
        ObjKind::New { class, .. } => format!("new:{class}@{}", site(obj.site)),
        ObjKind::Lit(l) => format!("lit:{l:?}@{}", site(obj.site)),
        ObjKind::ApiRet(m) => format!("api:{m}@{}", site(obj.site)),
        ObjKind::Param { index, .. } => format!("param:{index}"),
        ObjKind::Opaque => format!("opaque@{}", site(obj.site)),
        ObjKind::Ghost { owner, field } => {
            let fdesc = match field {
                GhostField::Named(m, vals) => {
                    let vs: Vec<String> = vals
                        .iter()
                        .map(|v| match v {
                            Value::Lit(l) => format!("{l:?}"),
                            Value::Obj(s) => format!("obj@{}", site(*s)),
                        })
                        .collect();
                    format!("{m}[{}]", vs.join(","))
                }
                GhostField::Top(m) => format!("top:{m}"),
                GhostField::Bot(m) => format!("bot:{m}"),
            };
            format!("ghost:({},{fdesc})", stable_obj_key(pool, *owner))
        }
    }
}

/// Tab. 4 categories for a call site where the augmented analysis differs
/// from the baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DiffCategory {
    /// Increased points-to coverage while being precise.
    PreciseCoverage,
    /// Less precise because of a wrong (learned but invalid) specification.
    WrongSpec,
    /// Less precise due to the coverage-increasing ⊤/⊥ approach of §6.4.
    CoverageApproach,
    /// Less precise for other reasons.
    Other,
}

/// One differing call site with its classification.
#[derive(Clone, Debug)]
pub struct ClassifiedSite {
    /// Source file name.
    pub file: String,
    /// Method called at the site.
    pub method: MethodId,
    /// The category.
    pub category: DiffCategory,
}

/// Outcome of a Tab. 4 comparison over a corpus.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// All differing call sites, classified.
    pub diffs: Vec<ClassifiedSite>,
    /// Total lines of source analyzed.
    pub total_loc: usize,
    /// Call sites (with used return values) examined.
    pub sites_examined: usize,
}

impl DiffReport {
    /// Counts per category.
    pub fn counts(&self) -> BTreeMap<DiffCategory, usize> {
        let mut out = BTreeMap::new();
        for d in &self.diffs {
            *out.entry(d.category).or_insert(0) += 1;
        }
        out
    }

    /// "One per N lines of code" rate for a category.
    pub fn loc_rate(&self, cat: DiffCategory) -> Option<usize> {
        let n = self.diffs.iter().filter(|d| d.category == cat).count();
        (n > 0).then(|| self.total_loc / n)
    }
}

/// Compares the spec-augmented analysis against the API-unaware baseline on
/// a corpus and classifies every differing call site (§7.3 / Tab. 4).
///
/// Four analyses run per file: baseline (no specs), the learned specs in
/// coverage mode (§6.4 on, as evaluated in the paper), the learned specs in
/// base mode (to attribute ⊤/⊥-caused imprecision), and the ground-truth
/// oracle (true specs, base mode) defining which added aliasing is correct.
///
/// Sites are compared by their **may-alias partner sets** — which other
/// call-site positions the returned object may alias — rather than by raw
/// abstract-object identity: a `RetSame` ghost object standing alone is
/// indistinguishable from the baseline's fresh object, so only actual
/// aliasing differences count.
pub fn compare_on_corpus(
    sources: &[(String, String)],
    table: &ApiTable,
    learned: &SpecDb,
    truth: &SpecDb,
    opts: &PipelineOptions,
) -> DiffReport {
    let false_read_methods: BTreeSet<MethodId> = learned
        .iter()
        .filter(|s| !truth.contains(s))
        .map(|s| match s {
            Spec::RetSame { method } | Spec::RetRecv { method } => *method,
            Spec::RetArg { target, .. } => *target,
        })
        .collect();

    let per_file: Vec<DiffReport> = sources
        .par_iter()
        .map(|(name, src)| {
            let mut report = DiffReport {
                total_loc: src.lines().count(),
                ..DiffReport::default()
            };
            let Ok(program) = parse(src) else {
                return report;
            };
            let Ok(bodies) = lower_program(&program, table, &opts.lower) else {
                return report;
            };
            let cov_opts = PtaOptions {
                ghost_mode: GhostMode::Coverage,
                ..opts.pta.clone()
            };
            for body in &bodies {
                let base = alias_partners(&Pta::run(body, &SpecDb::empty(), &opts.pta));
                let learned_cov = alias_partners(&Pta::run(body, learned, &cov_opts));
                let learned_base = alias_partners(&Pta::run(body, learned, &opts.pta));
                let oracle = alias_partners(&Pta::run(body, truth, &opts.pta));
                for (site, (method, cov_set)) in &learned_cov {
                    report.sites_examined += 1;
                    let empty = BTreeSet::new();
                    let base_set = base.get(site).map(|(_, s)| s).unwrap_or(&empty);
                    let added: BTreeSet<&String> = cov_set.difference(base_set).collect();
                    if added.is_empty() {
                        continue;
                    }
                    let oracle_added: BTreeSet<&String> = oracle
                        .get(site)
                        .map(|(_, s)| s.difference(base_set).collect())
                        .unwrap_or_default();
                    let category = if added.is_subset(&oracle_added) {
                        DiffCategory::PreciseCoverage
                    } else {
                        let base_mode_set =
                            learned_base.get(site).map(|(_, s)| s).unwrap_or(&empty);
                        let extra: BTreeSet<&String> =
                            added.difference(&oracle_added).copied().collect();
                        let extra_in_base: Vec<&&String> = extra
                            .iter()
                            .filter(|k| base_mode_set.contains(**k))
                            .collect();
                        if extra_in_base.is_empty() {
                            DiffCategory::CoverageApproach
                        } else if false_read_methods.contains(method) {
                            DiffCategory::WrongSpec
                        } else {
                            DiffCategory::Other
                        }
                    };
                    report.diffs.push(ClassifiedSite {
                        file: name.clone(),
                        method: *method,
                        category,
                    });
                }
            }
            report
        })
        .collect();

    let mut out = DiffReport::default();
    for r in per_file {
        out.total_loc += r.total_loc;
        out.sites_examined += r.sites_examined;
        out.diffs.extend(r.diffs);
    }
    out
}

/// Collects, per call site with a used return value, the set of *may-alias
/// partners* of the returned object: stable keys of every other call-site
/// position whose points-to set intersects the return's (merged over
/// unrolled copies).
fn alias_partners(pta: &Pta) -> BTreeMap<CallSite, (MethodId, BTreeSet<String>)> {
    // Gather points-to sets per (site, position) in stable-key form.
    type PosKey = (CallSite, u8); // 0 = recv, 1.. = args, 255 = ret
    let mut positions: BTreeMap<PosKey, BTreeSet<String>> = BTreeMap::new();
    let mut methods: BTreeMap<CallSite, MethodId> = BTreeMap::new();
    let mut has_ret: BTreeSet<CallSite> = BTreeSet::new();
    for rec in pta.records.iter().flatten() {
        let InstrRecord::Call(c) = rec else { continue };
        methods.insert(c.site, c.method);
        let mut push = |pos: u8, objs: &[ObjId]| {
            let slot = positions.entry((c.site, pos)).or_default();
            for &o in objs {
                slot.insert(stable_obj_key(&pta.objs, o));
            }
        };
        if let Some(r) = &c.recv {
            push(0, r);
        }
        for (i, a) in c.args.iter().enumerate() {
            push((i + 1) as u8, a);
        }
        if c.dst.is_some() {
            push(u8::MAX, &c.ret);
            has_ret.insert(c.site);
        }
    }
    // For each ret position, the partners are all other positions whose
    // sets intersect it.
    let mut out: BTreeMap<CallSite, (MethodId, BTreeSet<String>)> = BTreeMap::new();
    for &site in &has_ret {
        let ret = &positions[&(site, u8::MAX)];
        let mut partners = BTreeSet::new();
        for ((other, pos), set) in &positions {
            if *other == site {
                continue;
            }
            if ret.iter().any(|k| set.contains(k)) {
                partners.insert(format!("{}c{}:{}", other.node.0, other.ctx.0, pos));
            }
        }
        out.insert(site, (methods[&site], partners));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_learn::{ScoreFn, ScoredSpec};

    fn mk_learned(entries: &[(Spec, f64)]) -> LearnedSpecs {
        let _ = ScoreFn::default();
        LearnedSpecs {
            scored: entries
                .iter()
                .map(|(spec, score)| ScoredSpec {
                    spec: *spec,
                    score: *score,
                    matches: 1,
                    scored_edges: 1,
                })
                .collect(),
        }
    }

    fn spec(name: &str) -> Spec {
        Spec::RetSame {
            method: MethodId::new("C", name, 0),
        }
    }

    #[test]
    fn precision_recall_basics() {
        let learned = mk_learned(&[
            (spec("a"), 0.9), // valid
            (spec("b"), 0.8), // invalid
            (spec("c"), 0.4), // valid
        ]);
        let valid =
            |s: &Spec| matches!(s, Spec::RetSame { method } if method.method.as_str() != "b");
        let points = precision_recall(&learned, valid, &[0.0, 0.6, 0.95]);
        // τ=0: all selected → precision 2/3, recall 1.
        assert!((points[0].precision - 2.0 / 3.0).abs() < 1e-9);
        assert!((points[0].recall - 1.0).abs() < 1e-9);
        // τ=0.6: {a, b} → precision 1/2, recall 1/2.
        assert!((points[1].precision - 0.5).abs() < 1e-9);
        assert!((points[1].recall - 0.5).abs() < 1e-9);
        // τ=0.95: nothing selected → precision defined as 1, recall 0.
        assert_eq!(points[2].selected, 0);
        assert!((points[2].precision - 1.0).abs() < 1e-9);
        assert_eq!(points[2].recall, 0.0);
    }

    #[test]
    fn recall_monotone_in_tau() {
        let learned = mk_learned(&[(spec("a"), 0.9), (spec("b"), 0.5), (spec("c"), 0.2)]);
        let points = precision_recall(&learned, |_| true, &[0.0, 0.3, 0.6, 0.99]);
        for w in points.windows(2) {
            assert!(w[0].recall >= w[1].recall);
        }
    }

    #[test]
    fn compare_on_corpus_classifies_categories() {
        use uspec_corpus::java_library;
        let lib = java_library();
        let table = lib.api_table();
        let truth = SpecDb::from_specs(lib.true_specs());
        let get = MethodId::new("java.util.HashMap", "get", 1);
        let put = MethodId::new("java.util.HashMap", "put", 2);
        // Learned: the correct HashMap spec plus a WRONG RetSame on
        // SecureRandom.nextInt.
        let next_int = MethodId::new("java.security.SecureRandom", "nextInt", 0);
        let learned = SpecDb::from_specs([
            Spec::RetArg {
                target: get,
                source: put,
                x: 2,
            },
            Spec::RetSame { method: next_int },
        ]);
        let sources = vec![
            (
                "good.u".to_owned(),
                r#"
                fn main() {
                    m = new java.util.HashMap();
                    f = new java.io.File();
                    m.put("k", f);
                    x = m.get("k");
                    r = x.getName();
                }
                "#
                .to_owned(),
            ),
            (
                "wrong.u".to_owned(),
                r#"
                fn main() {
                    r = new java.security.SecureRandom();
                    a = r.nextInt();
                    b = r.nextInt();
                }
                "#
                .to_owned(),
            ),
            (
                "coverage.u".to_owned(),
                r#"
                fn main(api) {
                    m = new java.util.HashMap();
                    f = new java.io.File();
                    m.put(api.makeKey(), f);
                    x = m.get("other");
                }
                "#
                .to_owned(),
            ),
        ];
        let report = compare_on_corpus(
            &sources,
            &table,
            &learned,
            &truth,
            &PipelineOptions::default(),
        );
        let counts = report.counts();
        assert!(
            counts
                .get(&DiffCategory::PreciseCoverage)
                .copied()
                .unwrap_or(0)
                >= 1,
            "{counts:?}"
        );
        assert!(
            counts.get(&DiffCategory::WrongSpec).copied().unwrap_or(0) >= 1,
            "{counts:?}"
        );
        assert!(
            counts
                .get(&DiffCategory::CoverageApproach)
                .copied()
                .unwrap_or(0)
                >= 1,
            "{counts:?}"
        );
        assert!(report.total_loc > 0);
        assert!(report.loc_rate(DiffCategory::PreciseCoverage).is_some());
    }
}

#[cfg(test)]
mod stable_key_tests {
    use super::*;
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_pta::PtaOptions;

    fn keys_of(src: &str, specs: &SpecDb) -> Vec<String> {
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let pta = Pta::run(&body, specs, &PtaOptions::default());
        pta.objs
            .iter()
            .map(|(id, _)| stable_obj_key(&pta.objs, id))
            .collect()
    }

    const SRC: &str = r#"
        fn main(db) {
            m = new java.util.HashMap();
            m.put("k", db.getFile("a"));
            x = m.get("k");
        }
    "#;

    #[test]
    fn keys_are_unique_per_object() {
        let ks = keys_of(SRC, &SpecDb::empty());
        let set: std::collections::BTreeSet<_> = ks.iter().collect();
        assert_eq!(set.len(), ks.len(), "{ks:?}");
    }

    #[test]
    fn keys_are_stable_across_runs_and_spec_sets() {
        use uspec_lang::MethodId;
        let base = keys_of(SRC, &SpecDb::empty());
        let specs = SpecDb::from_specs([Spec::RetArg {
            target: MethodId::new("java.util.HashMap", "get", 1),
            source: MethodId::new("java.util.HashMap", "put", 2),
            x: 2,
        }]);
        let aug = keys_of(SRC, &specs);
        // Every baseline object except the get-return fresh object (which
        // the specs replace) reappears with an identical key.
        let aug_set: std::collections::BTreeSet<_> = aug.iter().cloned().collect();
        let missing: Vec<&String> = base.iter().filter(|k| !aug_set.contains(*k)).collect();
        assert!(
            missing
                .iter()
                .all(|k| k.starts_with("api:java.util.HashMap.get")),
            "only the replaced fresh return may disappear: {missing:?}"
        );
    }

    #[test]
    fn ghost_keys_describe_owner_and_field() {
        use uspec_lang::MethodId;
        let specs = SpecDb::from_specs([Spec::RetSame {
            method: MethodId::new("java.util.HashMap", "get", 1),
        }]);
        let ks = keys_of(SRC, &specs);
        let ghost = ks
            .iter()
            .find(|k| k.starts_with("ghost:"))
            .expect("ghost allocated");
        assert!(ghost.contains("new:java.util.HashMap"), "{ghost}");
        assert!(ghost.contains("get"), "{ghost}");
    }
}
