//! The end-to-end USpec pipeline (Fig. 1 of the paper).
//!
//! ```text
//! corpus ──parse/lower──▶ bodies ──PTA (API-unaware)──▶ event graphs
//!   event graphs ──§4.2──▶ training samples ──SGD──▶ model ϕ
//!   event graphs + ϕ ──Alg. 1──▶ candidates Γ_S ──score/τ──▶ specs S
//! ```
//!
//! File analysis is embarrassingly parallel and runs on rayon; training is
//! sequential SGD (as in the paper's single Vowpal Wabbit instance).

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use uspec_graph::{build_event_graph, EventGraph, GraphOptions};
use uspec_lang::lower::{lower_program, LowerOptions};
use uspec_lang::parser::parse;
use uspec_lang::registry::ApiTable;
use uspec_lang::LangError;
use uspec_learn::{CandidateSet, ExtractOptions, Extractor, LearnedSpecs, ScoreFn};
use uspec_model::{extract_samples, EdgeModel, Sample, TrainOptions, TrainStats};
use uspec_pta::{Pta, PtaOptions, SpecDb};

/// All knobs of the pipeline in one place.
#[derive(Clone, Debug)]
pub struct PipelineOptions {
    /// Frontend lowering (inlining depth etc.).
    pub lower: LowerOptions,
    /// Initial (API-unaware) points-to analysis options.
    pub pta: PtaOptions,
    /// Event-graph construction bounds.
    pub graph: GraphOptions,
    /// Probabilistic-model training options.
    pub train: TrainOptions,
    /// Candidate extraction options (Alg. 1).
    pub extract: ExtractOptions,
    /// Scoring function (§5.2).
    pub score_fn: ScoreFn,
    /// Drop exact-duplicate sources before analysis, as the paper prunes
    /// its dataset "to be free from project forks and file duplicates"
    /// (§7.1). Duplicates would otherwise multiply match counts and bias
    /// the edge model toward whatever the duplicated files do.
    pub dedup: bool,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions {
            lower: LowerOptions::default(),
            pta: PtaOptions::default(),
            graph: GraphOptions::default(),
            train: TrainOptions::default(),
            extract: ExtractOptions::default(),
            score_fn: ScoreFn::default(),
            dedup: true,
        }
    }
}

/// Aggregate statistics of the analyzed corpus.
#[derive(Clone, Debug, Default)]
pub struct CorpusStats {
    /// Files successfully analyzed.
    pub files: usize,
    /// Files that failed to parse or lower.
    pub failures: usize,
    /// Exact-duplicate files dropped before analysis.
    pub duplicates: usize,
    /// Event graphs (one per entry function).
    pub graphs: usize,
    /// Total events.
    pub events: usize,
    /// Total edges.
    pub edges: usize,
}

/// The outcome of a full pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// Scored candidates, ready for τ selection.
    pub learned: LearnedSpecs,
    /// Raw candidate extraction (Γ_S lists, counters).
    pub candidates: CandidateSet,
    /// Model training statistics.
    pub model_stats: TrainStats,
    /// Corpus statistics.
    pub corpus: CorpusStats,
}

impl PipelineResult {
    /// Selects the specification database at threshold `τ` (§5.3 + §5.4).
    pub fn select(&self, tau: f64) -> SpecDb {
        self.learned.select(tau)
    }
}

/// A cheap content hash for duplicate pruning.
fn content_hash(src: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    src.hash(&mut h);
    h.finish()
}

/// Parses, lowers and analyzes one source file into its event graphs (one
/// per entry function), using the **API-unaware** baseline analysis.
///
/// # Errors
///
/// Propagates frontend errors; analysis itself cannot fail.
pub fn analyze_source(
    source: &str,
    table: &ApiTable,
    opts: &PipelineOptions,
) -> Result<Vec<EventGraph>, LangError> {
    analyze_source_with_specs(source, table, &SpecDb::empty(), opts)
}

/// Like [`analyze_source`] but with an explicit specification database
/// (used for the augmented analysis of §6).
pub fn analyze_source_with_specs(
    source: &str,
    table: &ApiTable,
    specs: &SpecDb,
    opts: &PipelineOptions,
) -> Result<Vec<EventGraph>, LangError> {
    let program = parse(source)?;
    let bodies = lower_program(&program, table, &opts.lower)?;
    Ok(bodies
        .iter()
        .map(|body| {
            let pta = Pta::run(body, specs, &opts.pta);
            build_event_graph(body, &pta, &opts.graph)
        })
        .collect())
}

/// Runs the complete learning pipeline over `(name, source)` pairs.
///
/// Held-out design: the same graphs serve as training data for ϕ and as the
/// candidate-extraction corpus, exactly as in the paper (the model is not
/// used to *verify* its own training edges — candidates are scored on
/// *non-existent* induced edges).
pub fn run_pipeline(
    sources: &[(String, String)],
    table: &ApiTable,
    opts: &PipelineOptions,
) -> PipelineResult {
    let mut corpus = CorpusStats::default();
    // Phase 0: dataset pruning (§7.1): drop exact duplicates.
    let mut seen = std::collections::HashSet::new();
    let sources: Vec<&(String, String)> = sources
        .iter()
        .filter(|(_, src)| {
            if !opts.dedup {
                return true;
            }
            let keep = seen.insert(content_hash(src));
            if !keep {
                corpus.duplicates += 1;
            }
            keep
        })
        .collect();

    // Phase 1: per-file analysis (parallel).
    let results: Vec<Option<Vec<EventGraph>>> = sources
        .par_iter()
        .map(|(_, src)| analyze_source(src, table, opts).ok())
        .collect();
    let mut graphs: Vec<EventGraph> = Vec::new();
    for r in results {
        match r {
            Some(gs) => {
                corpus.files += 1;
                for g in gs {
                    corpus.graphs += 1;
                    corpus.events += g.num_events();
                    corpus.edges += g.num_edges();
                    graphs.push(g);
                }
            }
            None => corpus.failures += 1,
        }
    }

    // Phase 2: training-sample extraction (parallel, per-graph seeds) and
    // SGD training (sequential).
    let samples: Vec<Sample> = graphs
        .par_iter()
        .enumerate()
        .map(|(i, g)| {
            let mut rng = ChaCha8Rng::seed_from_u64(opts.train.seed ^ (i as u64).wrapping_mul(0x9E37));
            extract_samples(g, &mut rng, &opts.train)
        })
        .reduce(Vec::new, |mut a, b| {
            a.extend(b);
            a
        });
    let model = EdgeModel::train(&samples, &opts.train);

    // Phase 3: candidate extraction and scoring (parallel shards, Alg. 1).
    let shards: Vec<CandidateSet> = graphs
        .par_chunks(64.max(graphs.len() / 64 + 1))
        .map(|chunk| {
            let mut ex = Extractor::new(&model, opts.extract.clone());
            for g in chunk {
                ex.add_graph(g);
            }
            ex.finish()
        })
        .collect();
    let mut candidates = CandidateSet::default();
    for s in shards {
        candidates.merge(s);
    }

    let learned = LearnedSpecs::from_candidates(&candidates, opts.score_fn);
    PipelineResult {
        learned,
        candidates,
        model_stats: model.stats().clone(),
        corpus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_corpus::{generate_corpus, java_library, GenOptions};
    use uspec_lang::MethodId;
    use uspec_pta::Spec;

    #[test]
    fn small_end_to_end_run_learns_hashmap_spec() {
        let lib = java_library();
        let table = lib.api_table();
        let files = generate_corpus(
            &lib,
            &GenOptions {
                num_files: 500,
                seed: 11,
                ..GenOptions::default()
            },
        );
        let sources: Vec<(String, String)> =
            files.into_iter().map(|f| (f.name, f.source)).collect();
        let result = run_pipeline(&sources, &table, &PipelineOptions::default());

        assert!(result.corpus.failures == 0, "all files analyze");
        assert!(result.corpus.graphs > result.corpus.files / 2);
        assert!(!result.learned.is_empty(), "candidates found");

        let get = MethodId::new("java.util.HashMap", "get", 1);
        let put = MethodId::new("java.util.HashMap", "put", 2);
        let spec = Spec::RetArg {
            target: get,
            source: put,
            x: 2,
        };
        let entry = result
            .learned
            .get(&spec)
            .unwrap_or_else(|| panic!("HashMap RetArg candidate missing: {:?}",
                result.learned.scored.iter().take(10).collect::<Vec<_>>()));
        assert!(
            entry.score > 0.6,
            "HashMap.get/put should score high, got {}",
            entry.score
        );

        let db = result.select(0.6);
        assert!(db.contains(&spec));
        // §5.4 closure: the implied RetSame(get) is present too.
        assert!(db.has_ret_same(get));
    }
}

#[cfg(test)]
mod dedup_tests {
    use super::*;
    use uspec_corpus::{generate_corpus, java_library, GenOptions};

    #[test]
    fn duplicate_files_are_pruned() {
        let lib = java_library();
        let table = lib.api_table();
        let files = generate_corpus(
            &lib,
            &GenOptions {
                num_files: 60,
                seed: 2,
                ..GenOptions::default()
            },
        );
        // Simulate forks: every file appears three times.
        let mut sources: Vec<(String, String)> = Vec::new();
        for round in 0..3 {
            for f in &files {
                sources.push((format!("fork{round}/{}", f.name), f.source.clone()));
            }
        }
        let opts = PipelineOptions::default();
        let result = run_pipeline(&sources, &table, &opts);
        assert_eq!(result.corpus.duplicates, 120);
        assert_eq!(result.corpus.files, 60);

        // With dedup disabled the duplicates are all analyzed — and every
        // candidate's match count triples.
        let no_dedup = PipelineOptions {
            dedup: false,
            ..PipelineOptions::default()
        };
        let raw = run_pipeline(&sources, &table, &no_dedup);
        assert_eq!(raw.corpus.files, 180);
        let deduped_total: usize = result.learned.scored.iter().map(|s| s.matches).sum();
        let raw_total: usize = raw.learned.scored.iter().map(|s| s.matches).sum();
        assert_eq!(raw_total, 3 * deduped_total, "forks inflate match counts");
    }
}
