//! The end-to-end USpec pipeline (Fig. 1 of the paper).
//!
//! ```text
//! corpus ──parse/lower──▶ bodies ──PTA (API-unaware)──▶ event graphs
//!   event graphs ──§4.2──▶ training samples ──SGD──▶ model ϕ
//!   event graphs + ϕ ──Alg. 1──▶ candidates Γ_S ──score/τ──▶ specs S
//! ```
//!
//! The pipeline ingests its corpus through the shard-streaming
//! [`CorpusSource`] abstraction and drives the per-file jobs of
//! [`crate::jobs`] through a demand-driven [`JobEngine`], in two passes:
//!
//! * **pass 1** — *plan and fold*: per shard, run the duplicate filter,
//!   fingerprint each kept file's content, diff the store's ref slots
//!   (counting `jobs.invalidated` — the edit's cone roots), then demand
//!   each file's [`StatsJob`] and [`DigestJob`] in parallel and fold the
//!   stats deltas in corpus order. A changed file's digest demand computes
//!   its samples and pair blueprints while the graphs are resident; an
//!   unchanged file's resolves two tiny fingerprints from the store. The
//!   analyze outputs are evicted at the shard boundary.
//! * **pass 2** — one demand of the corpus [`ScoreJob`], keyed on the
//!   model key plus every kept file's pairs value digest. A store hit is
//!   the *entire* back half of the pipeline (model stats included); a miss
//!   demands the [`ModelJob`] — itself keyed on samples value digests, so
//!   it too replays unless some file's samples actually changed — then
//!   re-streams the corpus, scoring each kept file's blueprints under ϕ in
//!   corpus order.
//!
//! Every job is keyed by a content fingerprint of its actual inputs, and
//! the model/score folds key on per-file **value digests** rather than
//! file bytes (see [`crate::cache`]) — the Adapton-style early cutoff: an
//! edit whose extracted samples and blueprints come out unchanged stops
//! propagating at the digest layer, retraining and re-scoring nothing.
//! At most one shard's event graphs are
//! alive at any point ([`CorpusStats::peak_resident_graphs`] tracks the
//! high-water mark), and all merging happens in stable corpus order, so
//! the output is bit-identical for every `shard_size`, with or without a
//! store, warm or cold — including the single-shard batch mode of
//! [`run_pipeline`]. File analysis is embarrassingly parallel across files
//! *and* across each file's function bodies.

use std::collections::{HashMap, HashSet};

use rayon::prelude::*;
use uspec_corpus::{shards, CorpusSource, SliceSource};
use uspec_graph::{build_event_graph, EventGraph, GraphOptions};
use uspec_jobs::{JobEngine, Outcome};
use uspec_lang::ast::{Expr, NodeId, Program, StmtKind};
use uspec_lang::lower::{lower_program, LowerOptions};
use uspec_lang::parser::parse;
use uspec_lang::registry::ApiTable;
use uspec_lang::LangError;
use uspec_learn::{CandidateSet, ExtractOptions, LearnedSpecs, ProvenanceIndex, ScoreFn};
use uspec_model::{TrainOptions, TrainStats};
use uspec_pta::{Pta, PtaAggregate, PtaOptions, PtaStats, SpecDb};
use uspec_store::{ArtifactStore, Fingerprint, FpHasher};

use crate::cache::{
    analyze_job_key, digest_job_key, file_ref_slot, model_job_key, model_ref_slot,
    options_fingerprint, pairs_job_key, samples_job_key, score_job_key, score_ref_slot,
    stats_job_key, OptionFps,
};
use crate::jobs::{DigestJob, FileJob, ScoreJob, StatsJob};
use crate::stage::{AnalysisDiagnostic, AnalysisStage, AnalyzedFile, DedupFilter};

/// All knobs of the pipeline in one place.
#[derive(Clone, Debug)]
pub struct PipelineOptions {
    /// Frontend lowering (inlining depth etc.).
    pub lower: LowerOptions,
    /// Initial (API-unaware) points-to analysis options.
    pub pta: PtaOptions,
    /// Event-graph construction bounds.
    pub graph: GraphOptions,
    /// Probabilistic-model training options.
    pub train: TrainOptions,
    /// Candidate extraction options (Alg. 1).
    pub extract: ExtractOptions,
    /// Scoring function (§5.2).
    pub score_fn: ScoreFn,
    /// Drop exact-duplicate sources before analysis, as the paper prunes
    /// its dataset "to be free from project forks and file duplicates"
    /// (§7.1). Duplicates would otherwise multiply match counts and bias
    /// the edge model toward whatever the duplicated files do.
    pub dedup: bool,
    /// Files per ingestion shard in [`run_pipeline_streaming`]: event-graph
    /// memory is bounded by one shard's worth. Has no effect on the
    /// learned result — only on peak memory.
    pub shard_size: usize,
    /// Cap on the structured [`crate::stage::AnalysisDiagnostic`] records
    /// retained in [`CorpusStats::diagnostics`] (the failure *count* is
    /// never capped).
    pub max_diagnostics: usize,
    /// File names asserted to have changed (the CLI's `--dirty`): their
    /// per-file jobs are forced to re-execute even if content fingerprints
    /// match what the store holds. An entry matches a corpus file whose
    /// full name equals it *or* whose final path component equals it, so
    /// `--dirty file_0001.u` works against path-named corpora.
    /// The model and score artifacts are *not*
    /// forced directly — the forced files' value digests are recomputed,
    /// and if any derivative genuinely differs the downstream keys change
    /// on their own. A forcing directive, not an input: it never
    /// participates in job keys and cannot change the learned result.
    pub dirty: Vec<String>,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions {
            lower: LowerOptions::default(),
            pta: PtaOptions::default(),
            graph: GraphOptions::default(),
            train: TrainOptions::default(),
            extract: ExtractOptions::default(),
            score_fn: ScoreFn::default(),
            dedup: true,
            shard_size: 256,
            max_diagnostics: 20,
            dirty: Vec::new(),
        }
    }
}

/// Aggregate statistics of the analyzed corpus.
#[derive(Clone, Debug, Default)]
pub struct CorpusStats {
    /// Files successfully analyzed.
    pub files: usize,
    /// Files that failed to parse or lower.
    pub failures: usize,
    /// Exact-duplicate files dropped before analysis.
    pub duplicates: usize,
    /// Event graphs (one per entry function).
    pub graphs: usize,
    /// Total events.
    pub events: usize,
    /// Total edges.
    pub edges: usize,
    /// Function bodies whose points-to analysis hit the pass cap without
    /// converging (their truncated graphs are still used).
    pub non_converged: usize,
    /// High-water mark of event graphs resident in memory at once. For the
    /// streaming pipeline this is the largest single shard's graph count;
    /// for batch runs it equals `graphs`. Depends on `shard_size` by
    /// design and is excluded from [`CorpusStats::totals`].
    pub peak_resident_graphs: usize,
    /// Points-to solver statistics aggregated over every analyzed body
    /// (first analysis pass only, so totals are shard-size-invariant),
    /// including the per-body pass-count histogram.
    pub pta: PtaAggregate,
    /// Structured records of failed files, in corpus order, capped at
    /// [`PipelineOptions::max_diagnostics`].
    pub diagnostics: Vec<AnalysisDiagnostic>,
}

/// The shard-size-invariant counters of a [`CorpusStats`], for equality
/// assertions across pipeline configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorpusTotals {
    /// Files successfully analyzed.
    pub files: usize,
    /// Files that failed to parse or lower.
    pub failures: usize,
    /// Exact-duplicate files dropped before analysis.
    pub duplicates: usize,
    /// Event graphs.
    pub graphs: usize,
    /// Total events.
    pub events: usize,
    /// Total edges.
    pub edges: usize,
    /// Non-converged function bodies.
    pub non_converged: usize,
}

impl CorpusStats {
    /// Folds one delta (per-file in the job pipeline, per-shard in older
    /// callers) into the corpus totals, re-applying the *global*
    /// diagnostics cap. Deltas arrive in corpus order, so the retained
    /// diagnostics are the first `max_diagnostics` corpus-wide — identical
    /// to accumulating directly.
    pub fn absorb(&mut self, delta: CorpusStats, max_diagnostics: usize) {
        self.files += delta.files;
        self.failures += delta.failures;
        self.duplicates += delta.duplicates;
        self.graphs += delta.graphs;
        self.events += delta.events;
        self.edges += delta.edges;
        self.non_converged += delta.non_converged;
        self.peak_resident_graphs = self.peak_resident_graphs.max(delta.peak_resident_graphs);
        self.pta.merge(&delta.pta);
        for d in delta.diagnostics {
            if self.diagnostics.len() >= max_diagnostics {
                break;
            }
            self.diagnostics.push(d);
        }
    }

    /// The counters that are invariant under `shard_size`.
    pub fn totals(&self) -> CorpusTotals {
        CorpusTotals {
            files: self.files,
            failures: self.failures,
            duplicates: self.duplicates,
            graphs: self.graphs,
            events: self.events,
            edges: self.edges,
            non_converged: self.non_converged,
        }
    }
}

/// The outcome of a full pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// Scored candidates, ready for τ selection.
    pub learned: LearnedSpecs,
    /// Raw candidate extraction (Γ_S lists, counters).
    pub candidates: CandidateSet,
    /// Model training statistics.
    pub model_stats: TrainStats,
    /// Corpus statistics.
    pub corpus: CorpusStats,
    /// Per-candidate evidence tracing (capped top-k scored edges with
    /// file:line and feature contributions), merged across shards.
    pub provenance: ProvenanceIndex,
    /// Content fingerprint of the kept corpus (index + content of every
    /// deduplicated file, folded in corpus order). Identifies *what* was
    /// analyzed independently of options or sharding — the run ledger's
    /// envelope records it so entries are comparable across history.
    pub corpus_fingerprint: Fingerprint,
}

impl PipelineResult {
    /// Selects the specification database at threshold `τ` (§5.3 + §5.4).
    pub fn select(&self, tau: f64) -> SpecDb {
        self.learned.select(tau)
    }
}

/// Parses, lowers and analyzes one source file into its event graphs (one
/// per entry function), using the **API-unaware** baseline analysis.
///
/// # Errors
///
/// Propagates frontend errors; analysis itself cannot fail.
pub fn analyze_source(
    source: &str,
    table: &ApiTable,
    opts: &PipelineOptions,
) -> Result<Vec<EventGraph>, LangError> {
    analyze_source_with_specs(source, table, &SpecDb::empty(), opts)
}

/// Like [`analyze_source`] but with an explicit specification database
/// (used for the augmented analysis of §6).
pub fn analyze_source_with_specs(
    source: &str,
    table: &ApiTable,
    specs: &SpecDb,
    opts: &PipelineOptions,
) -> Result<Vec<EventGraph>, LangError> {
    analyze_source_staged(source, table, specs, opts)
        .map(|file| file.graphs)
        .map_err(|(_, e)| e)
}

/// [`analyze_source_with_specs`] with the failing stage attached and
/// non-converged bodies reported, feeding the structured diagnostics of
/// the per-file [`StatsJob`].
pub(crate) fn analyze_source_staged(
    source: &str,
    table: &ApiTable,
    specs: &SpecDb,
    opts: &PipelineOptions,
) -> Result<AnalyzedFile, (AnalysisStage, LangError)> {
    let program = parse(source).map_err(|e| (AnalysisStage::Parse, e))?;
    let bodies =
        lower_program(&program, table, &opts.lower).map_err(|e| (AnalysisStage::Lower, e))?;
    let lines = node_line_table(source, &program);
    // Function bodies are analysis-independent: points-to and graph build
    // run on rayon per body (order-preserving collect), and the stats fold
    // below stays sequential in body order.
    let analyzed: Vec<(PtaStats, EventGraph)> = bodies
        .par_iter()
        .map(|body| {
            let pta = Pta::run(body, specs, &opts.pta);
            let mut g = build_event_graph(body, &pta, &opts.graph);
            g.annotate_lines(&lines);
            (pta.stats, g)
        })
        .collect();
    let mut file = AnalyzedFile::default();
    for (body, (stats, g)) in bodies.iter().zip(analyzed) {
        file.pta.record(&stats);
        if !stats.converged {
            file.non_converged
                .push((body.func.to_string(), stats.passes));
        }
        file.graphs.push(g);
    }
    Ok(file)
}

/// Maps every statement/expression node id of `program` to its 1-based
/// source line, so event-graph call sites can be cited as `file:line` in
/// provenance evidence. A precomputed newline-offset index keeps the pass
/// linear in source size.
fn node_line_table(source: &str, program: &Program) -> HashMap<NodeId, u32> {
    let line_starts: Vec<u32> = std::iter::once(0)
        .chain(
            source
                .bytes()
                .enumerate()
                .filter(|&(_, b)| b == b'\n')
                .map(|(i, _)| i as u32 + 1),
        )
        .collect();
    // Number of line starts at or before `lo` = the 1-based line number.
    let line_of = |lo: u32| line_starts.partition_point(|&s| s <= lo) as u32;
    let mut table = HashMap::new();
    for func in program.all_funcs() {
        func.body.walk_stmts(&mut |stmt| {
            table.insert(stmt.id, line_of(stmt.span.lo));
            let mut note = |e: &Expr| {
                e.walk(&mut |e| {
                    table.insert(e.id, line_of(e.span.lo));
                })
            };
            // `walk_stmts` visits nested blocks but not the expressions a
            // statement contains; those carry the call-site node ids.
            match &stmt.kind {
                StmtKind::Assign { value, .. } => note(value),
                StmtKind::Expr(e) => note(e),
                StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => note(cond),
                StmtKind::Return(Some(e)) => note(e),
                StmtKind::Return(None) => {}
            }
        });
    }
    table
}

/// Runs the complete learning pipeline over a shard-streaming corpus
/// source, holding at most one shard's event graphs in memory.
///
/// Held-out design: the same graphs serve as training data for ϕ and as
/// the candidate-extraction corpus, exactly as in the paper (the model is
/// not used to *verify* its own training edges — candidates are scored on
/// *non-existent* induced edges). The corpus is therefore traversed twice:
/// pass A analyzes each shard and collects training samples, pass B
/// re-analyzes and extracts candidates with the trained model.
///
/// The result is identical for every `opts.shard_size` (and to
/// [`run_pipeline`]): all per-shard computation is keyed on stable corpus
/// indices and merged in corpus order.
pub fn run_pipeline_streaming<S: CorpusSource + Sync + ?Sized>(
    source: &S,
    table: &ApiTable,
    opts: &PipelineOptions,
) -> PipelineResult {
    run_pipeline_cached(source, table, opts, None)
}

/// Writes a ref-slot pointer, degrading failures to a warning — refs power
/// invalidation *accounting*, never correctness.
fn write_ref(store: &ArtifactStore, slot: Fingerprint, value: Fingerprint, what: &str) {
    if let Err(e) = store.set_ref(slot, value) {
        uspec_telemetry::log_warn!("ref write for {what} failed: {e}");
    }
}

/// [`run_pipeline_streaming`] with an optional persistent artifact store
/// acting as the job engine's durable memo table.
///
/// With `Some(store)`, every durable job output — per-file stats, samples,
/// pair blueprints and value digests, plus the trained model and the
/// corpus score artifact — is looked up by a content fingerprint of its
/// actual inputs (see [`crate::cache`]); hits skip parsing, lowering,
/// points-to analysis, graph construction, sampling, training or scoring;
/// misses compute live and populate the store. An edit re-executes only
/// its cone: the edited file's per-file jobs always, the model and score
/// folds only if the file's extracted samples or blueprints actually
/// changed (early cutoff over value digests). The result is byte-identical
/// with and without a store, warm or cold — the cache can only change
/// *how fast* an answer is produced, never the answer.
pub fn run_pipeline_cached<S: CorpusSource + Sync + ?Sized>(
    source: &S,
    table: &ApiTable,
    opts: &PipelineOptions,
    store: Option<&ArtifactStore>,
) -> PipelineResult {
    let fps = OptionFps::new(opts);
    let opts_fp = options_fingerprint(opts);
    let engine = JobEngine::new(store);
    let dirty: HashSet<&str> = opts.dirty.iter().map(String::as_str).collect();
    // CLI-collected corpora name files by path; a bare `--dirty file.u`
    // should still hit them, so match on the full name or its basename.
    let is_dirty = |name: &str| {
        !dirty.is_empty()
            && (dirty.contains(name)
                || std::path::Path::new(name)
                    .file_name()
                    .and_then(|f| f.to_str())
                    .is_some_and(|f| dirty.contains(f)))
    };

    // Pass 1: plan each shard (dedup, content fingerprints, ref-slot
    // diffing), demand per-file stats and digest jobs, and fold the stats
    // deltas in corpus order. A changed file's digest demand derives its
    // samples and blueprints while the analysis memo is resident; an
    // unchanged file's is a tiny store decode.
    let mut stats = CorpusStats::default();
    let mut dedup = DedupFilter::new(opts.dedup);
    let mut kept: Vec<(u64, String, Fingerprint, Fingerprint)> = Vec::new();
    // Corpus identity for the run ledger: fold every kept file's index and
    // content fingerprint in corpus order. Shard-size independent because
    // the fold follows corpus indices, not shard boundaries.
    let mut corpus_hasher = FpHasher::new();
    corpus_hasher.write_str("uspec.corpus.v1");
    for shard in shards(source, opts.shard_size) {
        // Shard structure is a streaming-configuration detail, recorded
        // only as a histogram (reports place those under the machine-local
        // `timings` section; a counter here would break the shard-size
        // invariance of `counters.metrics`). The histogram's `count` is
        // the number of shards the driver planned; a score-artifact miss
        // re-streams them again inside the score job.
        uspec_telemetry::histogram!("pipeline.shard_files").record(shard.files.len() as u64);
        let mut files: Vec<FileJob<'_>> = Vec::new();
        for (idx, name, src) in shard.iter() {
            if !dedup.keep(src) {
                stats.duplicates += 1;
                continue;
            }
            let file = FileJob::new(idx, name, src, table, opts, &fps);
            let mut invalidated = false;
            if let Some(s) = store {
                let slot = file_ref_slot(opts_fp, file.index);
                let old = s.get_ref(slot);
                invalidated = old.is_some_and(|old| old != file.content);
                // Rewriting an already-current ref would cost a write +
                // rename per file per run — the dominant wall-time of a
                // fully warm rerun. Only a genuinely moved pointer writes.
                if old != Some(file.content) {
                    write_ref(s, slot, file.content, name);
                }
            }
            if is_dirty(name) {
                invalidated = true;
                // Force the file's whole per-file cone: analysis and every
                // durable derivative, even if the stored bytes look
                // current. Model and score keys recompute from the fresh
                // digests, so they follow automatically exactly when a
                // derivative really differs.
                engine.force(analyze_job_key(&fps, file.content));
                engine.force(stats_job_key(&fps, file.content));
                engine.force(samples_job_key(&fps, file.content, file.index));
                engine.force(pairs_job_key(&fps, file.content));
                engine.force(digest_job_key(&fps, file.content, file.index));
            }
            if invalidated {
                uspec_telemetry::counter!("jobs.invalidated").inc();
            }
            files.push(file);
        }

        let stats_jobs: Vec<StatsJob<'_>> = files.iter().map(|&f| StatsJob(f)).collect();
        let resolved = engine.demand_par(&stats_jobs);
        // Value digests for every kept file. Changed files (their stats
        // just executed, so the analysis is memo-resident) derive samples
        // and blueprints here, which keeps the analyze output from ever
        // being rebuilt after eviction; unchanged files hit the store.
        let digest_jobs: Vec<DigestJob<'_>> = files.iter().map(|&f| DigestJob(f)).collect();
        let digests = engine.demand_par(&digest_jobs);

        let mut resident_graphs: u64 = 0;
        for ((file, r), d) in files.iter().zip(&resolved).zip(&digests) {
            if r.outcome == Outcome::Executed {
                resident_graphs += r.value.graphs;
            }
            stats.absorb(r.value.to_delta(file.name), opts.max_diagnostics);
            corpus_hasher.write_u64(file.index);
            corpus_hasher.write_fingerprint(file.content);
            kept.push((file.index, file.name.to_owned(), d.value.0, d.value.1));
        }
        stats.peak_resident_graphs = stats.peak_resident_graphs.max(resident_graphs as usize);
        uspec_telemetry::gauge!("pipeline.peak_resident_graphs").record_max(resident_graphs);
        // Graphs drop at the shard boundary: the streaming memory contract.
        engine.evict(files.iter().map(|f| analyze_job_key(&fps, f.content)));
    }

    // The model and score folds over the kept corpus. Their ref slots
    // implement changed-artifact detection the same way file slots
    // implement changed-file detection.
    let model_kept: Vec<(u64, Fingerprint)> = kept.iter().map(|&(i, _, s, _)| (i, s)).collect();
    let mkey = model_job_key(&fps, &model_kept);
    let score_kept: Vec<(u64, String, Fingerprint)> = kept
        .iter()
        .map(|(i, name, _, p)| (*i, name.clone(), *p))
        .collect();
    let skey = score_job_key(mkey, &score_kept);
    if let Some(s) = store {
        for (slot, key, what) in [
            (model_ref_slot(opts_fp), mkey, "model"),
            (score_ref_slot(opts_fp), skey, "score"),
        ] {
            let old = s.get_ref(slot);
            if old.is_some_and(|old| old != key) {
                uspec_telemetry::counter!("jobs.invalidated").inc();
            }
            if old != Some(key) {
                write_ref(s, slot, key, what);
            }
        }
    }

    // Pass 2: one demand resolves the whole back half. A store hit decodes
    // the merged candidates, capped provenance and training stats without
    // touching the model; a miss trains (or decodes) ϕ and re-streams the
    // corpus, scoring each kept file's blueprints in corpus order — the
    // same Γ_S order as live extraction.
    let scored = engine
        .demand(&ScoreJob {
            source,
            table,
            opts,
            fps: &fps,
            kept: &model_kept,
            model_key: mkey,
            key: skey,
        })
        .value;
    let crate::jobs::ScoredCorpus {
        candidates,
        mut provenance,
        model_stats,
    } = (*scored).clone();
    // Counterfactuals depend on the *merged* Γ lists, so they are attached
    // once here — after every file merged, warm or cold — never inside a
    // cached payload.
    provenance.attach_counterfactuals(&candidates, opts.score_fn);

    let learned = LearnedSpecs::from_candidates(&candidates, opts.score_fn);
    PipelineResult {
        learned,
        candidates,
        model_stats,
        corpus: stats,
        provenance,
        corpus_fingerprint: corpus_hasher.digest(),
    }
}

/// Runs the complete learning pipeline over in-memory `(name, source)`
/// pairs as a single batch.
///
/// This is a thin wrapper over [`run_pipeline_streaming`] with one
/// all-corpus shard; `opts.shard_size` is ignored. It produces exactly the
/// same result as the streaming form — the difference is only that every
/// event graph is resident at once (see
/// [`CorpusStats::peak_resident_graphs`]).
pub fn run_pipeline(
    sources: &[(String, String)],
    table: &ApiTable,
    opts: &PipelineOptions,
) -> PipelineResult {
    let batch = PipelineOptions {
        shard_size: usize::MAX,
        ..opts.clone()
    };
    run_pipeline_streaming(&SliceSource::new(sources), table, &batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_corpus::{generate_corpus, java_library, GenOptions};
    use uspec_lang::MethodId;
    use uspec_pta::Spec;

    #[test]
    fn small_end_to_end_run_learns_hashmap_spec() {
        let lib = java_library();
        let table = lib.api_table();
        let files = generate_corpus(
            &lib,
            &GenOptions {
                num_files: 500,
                seed: 11,
                ..GenOptions::default()
            },
        );
        let sources: Vec<(String, String)> =
            files.into_iter().map(|f| (f.name, f.source)).collect();
        let result = run_pipeline(&sources, &table, &PipelineOptions::default());

        assert!(result.corpus.failures == 0, "all files analyze");
        assert!(result.corpus.graphs > result.corpus.files / 2);
        assert!(!result.learned.is_empty(), "candidates found");
        assert_eq!(
            result.corpus.peak_resident_graphs, result.corpus.graphs,
            "batch mode holds the whole corpus"
        );

        let get = MethodId::new("java.util.HashMap", "get", 1);
        let put = MethodId::new("java.util.HashMap", "put", 2);
        let spec = Spec::RetArg {
            target: get,
            source: put,
            x: 2,
        };
        let entry = result.learned.get(&spec).unwrap_or_else(|| {
            panic!(
                "HashMap RetArg candidate missing: {:?}",
                result.learned.scored.iter().take(10).collect::<Vec<_>>()
            )
        });
        assert!(
            entry.score > 0.6,
            "HashMap.get/put should score high, got {}",
            entry.score
        );

        let db = result.select(0.6);
        assert!(db.contains(&spec));
        // §5.4 closure: the implied RetSame(get) is present too.
        assert!(db.has_ret_same(get));
    }

    #[test]
    fn failures_produce_capped_diagnostics() {
        let lib = java_library();
        let table = lib.api_table();
        let mut sources: Vec<(String, String)> = vec![
            (
                "ok.u".into(),
                "fn main(db) { f = db.getFile(\"x\"); f.getName(); }".into(),
            ),
            ("bad_parse.u".into(), "fn main( {".into()),
            ("bad_lower.u".into(), "fn main() { y = x; }".into()),
        ];
        for i in 0..10 {
            sources.push((format!("bad{i}.u"), format!("fn broken{i}( {{")));
        }
        let opts = PipelineOptions {
            max_diagnostics: 4,
            ..PipelineOptions::default()
        };
        let result = run_pipeline(&sources, &table, &opts);
        assert_eq!(result.corpus.files, 1);
        assert_eq!(result.corpus.failures, 12, "every bad file counted");
        assert_eq!(result.corpus.diagnostics.len(), 4, "records capped");
        use crate::stage::DiagnosticKind;
        let d = &result.corpus.diagnostics[0];
        assert_eq!(d.file, "bad_parse.u");
        assert!(matches!(
            d.kind,
            DiagnosticKind::Frontend {
                stage: crate::stage::AnalysisStage::Parse,
                ..
            }
        ));
        let d = &result.corpus.diagnostics[1];
        assert_eq!(d.file, "bad_lower.u");
        assert!(matches!(
            d.kind,
            DiagnosticKind::Frontend {
                stage: crate::stage::AnalysisStage::Lower,
                ..
            }
        ));
        assert!(
            d.to_string().contains("bad_lower.u"),
            "display names the file"
        );
    }

    #[test]
    fn non_converged_bodies_are_counted_and_diagnosed() {
        use crate::stage::DiagnosticKind;
        let lib = java_library();
        let table = lib.api_table();
        // A field read *before* its write: the stored fact flows backwards
        // through the heap, so the analysis needs a second pass — which a
        // cap of 1 forbids.
        let sources = vec![(
            "feedback.u".into(),
            "class Box { fn noop(self) { return self; } }\n\
             fn main(db) {\n\
                 b = new Box();\n\
                 x = b.item;\n\
                 b.item = db.getFile(\"a\");\n\
                 y = x;\n\
             }"
            .to_owned(),
        )];
        let capped = PipelineOptions {
            pta: uspec_pta::PtaOptions {
                max_passes: 1,
                ..uspec_pta::PtaOptions::default()
            },
            ..PipelineOptions::default()
        };
        let result = run_pipeline(&sources, &table, &capped);
        assert_eq!(result.corpus.failures, 0, "the file itself analyzes");
        assert_eq!(result.corpus.non_converged, 1);
        assert_eq!(result.corpus.totals().non_converged, 1);
        let d = result
            .corpus
            .diagnostics
            .iter()
            .find(|d| matches!(d.kind, DiagnosticKind::NonConverged { .. }))
            .expect("non-convergence diagnostic recorded");
        assert_eq!(d.file, "feedback.u");
        let DiagnosticKind::NonConverged { ref func, passes } = d.kind else {
            unreachable!()
        };
        assert_eq!(func, "main");
        assert_eq!(passes, 1);
        assert!(d.to_string().contains("not converged"), "{d}");

        // At the default cap the same corpus converges cleanly.
        let ok = run_pipeline(&sources, &table, &PipelineOptions::default());
        assert_eq!(ok.corpus.non_converged, 0);
        assert!(ok.corpus.diagnostics.is_empty());
    }
}

#[cfg(test)]
mod dedup_tests {
    use super::*;
    use uspec_corpus::{generate_corpus, java_library, GenOptions};

    #[test]
    fn duplicate_files_are_pruned() {
        let lib = java_library();
        let table = lib.api_table();
        let files = generate_corpus(
            &lib,
            &GenOptions {
                num_files: 60,
                seed: 2,
                ..GenOptions::default()
            },
        );
        // Simulate forks: every file appears three times.
        let mut sources: Vec<(String, String)> = Vec::new();
        for round in 0..3 {
            for f in &files {
                sources.push((format!("fork{round}/{}", f.name), f.source.clone()));
            }
        }
        let opts = PipelineOptions::default();
        let result = run_pipeline(&sources, &table, &opts);
        assert_eq!(result.corpus.duplicates, 120);
        assert_eq!(result.corpus.files, 60);

        // With dedup disabled the duplicates are all analyzed — and every
        // candidate's match count triples.
        let no_dedup = PipelineOptions {
            dedup: false,
            ..PipelineOptions::default()
        };
        let raw = run_pipeline(&sources, &table, &no_dedup);
        assert_eq!(raw.corpus.files, 180);
        let deduped_total: usize = result.learned.scored.iter().map(|s| s.matches).sum();
        let raw_total: usize = raw.learned.scored.iter().map(|s| s.matches).sum();
        assert_eq!(raw_total, 3 * deduped_total, "forks inflate match counts");
    }
}
