//! The end-to-end USpec pipeline (Fig. 1 of the paper).
//!
//! ```text
//! corpus ──parse/lower──▶ bodies ──PTA (API-unaware)──▶ event graphs
//!   event graphs ──§4.2──▶ training samples ──SGD──▶ model ϕ
//!   event graphs + ϕ ──Alg. 1──▶ candidates Γ_S ──score/τ──▶ specs S
//! ```
//!
//! The pipeline ingests its corpus through the shard-streaming
//! [`CorpusSource`] abstraction and folds the explicit stages of
//! [`crate::stage`] over one shard at a time, in two passes:
//!
//! * **pass A** — analyze each shard and extract training samples, then
//!   train the edge model ϕ (sequential SGD, as in the paper's single
//!   Vowpal Wabbit instance);
//! * **pass B** — re-analyze each shard and run Alg. 1 candidate
//!   extraction with the trained model.
//!
//! At most one shard's event graphs are alive at any point
//! ([`CorpusStats::peak_resident_graphs`] tracks the high-water mark), and
//! every per-shard result is keyed on stable corpus indices, so the output
//! is bit-identical for every `shard_size` — including the single-shard
//! batch mode of [`run_pipeline`]. File analysis is embarrassingly
//! parallel and runs on rayon within each shard.

use std::collections::HashMap;

use uspec_corpus::{shards, CorpusSource, Shard, SliceSource};
use uspec_graph::{build_event_graph, EventGraph, GraphOptions};
use uspec_lang::ast::{Expr, NodeId, Program, StmtKind};
use uspec_lang::lower::{lower_program, LowerOptions};
use uspec_lang::parser::parse;
use uspec_lang::registry::ApiTable;
use uspec_lang::LangError;
use uspec_learn::{CandidateSet, ExtractOptions, LearnedSpecs, ProvenanceIndex, ScoreFn};
use uspec_model::{EdgeModel, Sample, TrainOptions, TrainStats};
use uspec_pta::{Pta, PtaAggregate, PtaOptions, SpecDb};
use uspec_store::{ArtifactStore, FpHasher};

use crate::cache::{
    analyze_key, decode_payload, encode_payload, extract_key, model_key, options_fingerprint,
    roll_shard, shard_digest, ShardAnalysisPayload, ShardExtractPayload, StatsDelta,
};
use crate::stage::{
    AnalysisDiagnostic, AnalysisStage, AnalyzeStage, AnalyzedFile, DedupFilter, ExtractStage,
    SampleStage,
};

/// All knobs of the pipeline in one place.
#[derive(Clone, Debug)]
pub struct PipelineOptions {
    /// Frontend lowering (inlining depth etc.).
    pub lower: LowerOptions,
    /// Initial (API-unaware) points-to analysis options.
    pub pta: PtaOptions,
    /// Event-graph construction bounds.
    pub graph: GraphOptions,
    /// Probabilistic-model training options.
    pub train: TrainOptions,
    /// Candidate extraction options (Alg. 1).
    pub extract: ExtractOptions,
    /// Scoring function (§5.2).
    pub score_fn: ScoreFn,
    /// Drop exact-duplicate sources before analysis, as the paper prunes
    /// its dataset "to be free from project forks and file duplicates"
    /// (§7.1). Duplicates would otherwise multiply match counts and bias
    /// the edge model toward whatever the duplicated files do.
    pub dedup: bool,
    /// Files per ingestion shard in [`run_pipeline_streaming`]: event-graph
    /// memory is bounded by one shard's worth. Has no effect on the
    /// learned result — only on peak memory.
    pub shard_size: usize,
    /// Cap on the structured [`AnalysisDiagnostic`] records retained in
    /// [`CorpusStats::diagnostics`] (the failure *count* is never capped).
    pub max_diagnostics: usize,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions {
            lower: LowerOptions::default(),
            pta: PtaOptions::default(),
            graph: GraphOptions::default(),
            train: TrainOptions::default(),
            extract: ExtractOptions::default(),
            score_fn: ScoreFn::default(),
            dedup: true,
            shard_size: 256,
            max_diagnostics: 20,
        }
    }
}

/// Aggregate statistics of the analyzed corpus.
#[derive(Clone, Debug, Default)]
pub struct CorpusStats {
    /// Files successfully analyzed.
    pub files: usize,
    /// Files that failed to parse or lower.
    pub failures: usize,
    /// Exact-duplicate files dropped before analysis.
    pub duplicates: usize,
    /// Event graphs (one per entry function).
    pub graphs: usize,
    /// Total events.
    pub events: usize,
    /// Total edges.
    pub edges: usize,
    /// Function bodies whose points-to analysis hit the pass cap without
    /// converging (their truncated graphs are still used).
    pub non_converged: usize,
    /// High-water mark of event graphs resident in memory at once. For the
    /// streaming pipeline this is the largest single shard's graph count;
    /// for batch runs it equals `graphs`. Depends on `shard_size` by
    /// design and is excluded from [`CorpusStats::totals`].
    pub peak_resident_graphs: usize,
    /// Points-to solver statistics aggregated over every analyzed body
    /// (first analysis pass only, so totals are shard-size-invariant),
    /// including the per-body pass-count histogram.
    pub pta: PtaAggregate,
    /// Structured records of failed files, in corpus order, capped at
    /// [`PipelineOptions::max_diagnostics`].
    pub diagnostics: Vec<AnalysisDiagnostic>,
}

/// The shard-size-invariant counters of a [`CorpusStats`], for equality
/// assertions across pipeline configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorpusTotals {
    /// Files successfully analyzed.
    pub files: usize,
    /// Files that failed to parse or lower.
    pub failures: usize,
    /// Exact-duplicate files dropped before analysis.
    pub duplicates: usize,
    /// Event graphs.
    pub graphs: usize,
    /// Total events.
    pub events: usize,
    /// Total edges.
    pub edges: usize,
    /// Non-converged function bodies.
    pub non_converged: usize,
}

impl CorpusStats {
    /// Folds one shard's delta (from [`AnalyzeStage::run`] or a cache hit)
    /// into the corpus totals, re-applying the *global* diagnostics cap.
    /// Deltas arrive in corpus order, so the retained diagnostics are the
    /// first `max_diagnostics` corpus-wide — identical to accumulating
    /// directly.
    pub fn absorb(&mut self, delta: CorpusStats, max_diagnostics: usize) {
        self.files += delta.files;
        self.failures += delta.failures;
        self.duplicates += delta.duplicates;
        self.graphs += delta.graphs;
        self.events += delta.events;
        self.edges += delta.edges;
        self.non_converged += delta.non_converged;
        self.peak_resident_graphs = self.peak_resident_graphs.max(delta.peak_resident_graphs);
        self.pta.merge(&delta.pta);
        for d in delta.diagnostics {
            if self.diagnostics.len() >= max_diagnostics {
                break;
            }
            self.diagnostics.push(d);
        }
    }

    /// The counters that are invariant under `shard_size`.
    pub fn totals(&self) -> CorpusTotals {
        CorpusTotals {
            files: self.files,
            failures: self.failures,
            duplicates: self.duplicates,
            graphs: self.graphs,
            events: self.events,
            edges: self.edges,
            non_converged: self.non_converged,
        }
    }
}

/// The outcome of a full pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// Scored candidates, ready for τ selection.
    pub learned: LearnedSpecs,
    /// Raw candidate extraction (Γ_S lists, counters).
    pub candidates: CandidateSet,
    /// Model training statistics.
    pub model_stats: TrainStats,
    /// Corpus statistics.
    pub corpus: CorpusStats,
    /// Per-candidate evidence tracing (capped top-k scored edges with
    /// file:line and feature contributions), merged across shards.
    pub provenance: ProvenanceIndex,
}

impl PipelineResult {
    /// Selects the specification database at threshold `τ` (§5.3 + §5.4).
    pub fn select(&self, tau: f64) -> SpecDb {
        self.learned.select(tau)
    }
}

/// Parses, lowers and analyzes one source file into its event graphs (one
/// per entry function), using the **API-unaware** baseline analysis.
///
/// # Errors
///
/// Propagates frontend errors; analysis itself cannot fail.
pub fn analyze_source(
    source: &str,
    table: &ApiTable,
    opts: &PipelineOptions,
) -> Result<Vec<EventGraph>, LangError> {
    analyze_source_with_specs(source, table, &SpecDb::empty(), opts)
}

/// Like [`analyze_source`] but with an explicit specification database
/// (used for the augmented analysis of §6).
pub fn analyze_source_with_specs(
    source: &str,
    table: &ApiTable,
    specs: &SpecDb,
    opts: &PipelineOptions,
) -> Result<Vec<EventGraph>, LangError> {
    analyze_source_staged(source, table, specs, opts)
        .map(|file| file.graphs)
        .map_err(|(_, e)| e)
}

/// [`analyze_source_with_specs`] with the failing stage attached and
/// non-converged bodies reported, feeding the structured diagnostics of
/// [`crate::stage::AnalyzeStage`].
pub(crate) fn analyze_source_staged(
    source: &str,
    table: &ApiTable,
    specs: &SpecDb,
    opts: &PipelineOptions,
) -> Result<AnalyzedFile, (AnalysisStage, LangError)> {
    let program = parse(source).map_err(|e| (AnalysisStage::Parse, e))?;
    let bodies =
        lower_program(&program, table, &opts.lower).map_err(|e| (AnalysisStage::Lower, e))?;
    let lines = node_line_table(source, &program);
    let mut file = AnalyzedFile::default();
    for body in &bodies {
        let pta = Pta::run(body, specs, &opts.pta);
        file.pta.record(&pta.stats);
        if !pta.stats.converged {
            file.non_converged
                .push((body.func.to_string(), pta.stats.passes));
        }
        let mut g = build_event_graph(body, &pta, &opts.graph);
        g.annotate_lines(&lines);
        file.graphs.push(g);
    }
    Ok(file)
}

/// Maps every statement/expression node id of `program` to its 1-based
/// source line, so event-graph call sites can be cited as `file:line` in
/// provenance evidence. A precomputed newline-offset index keeps the pass
/// linear in source size.
fn node_line_table(source: &str, program: &Program) -> HashMap<NodeId, u32> {
    let line_starts: Vec<u32> = std::iter::once(0)
        .chain(
            source
                .bytes()
                .enumerate()
                .filter(|&(_, b)| b == b'\n')
                .map(|(i, _)| i as u32 + 1),
        )
        .collect();
    // Number of line starts at or before `lo` = the 1-based line number.
    let line_of = |lo: u32| line_starts.partition_point(|&s| s <= lo) as u32;
    let mut table = HashMap::new();
    for func in program.all_funcs() {
        func.body.walk_stmts(&mut |stmt| {
            table.insert(stmt.id, line_of(stmt.span.lo));
            let mut note = |e: &Expr| {
                e.walk(&mut |e| {
                    table.insert(e.id, line_of(e.span.lo));
                })
            };
            // `walk_stmts` visits nested blocks but not the expressions a
            // statement contains; those carry the call-site node ids.
            match &stmt.kind {
                StmtKind::Assign { value, .. } => note(value),
                StmtKind::Expr(e) => note(e),
                StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => note(cond),
                StmtKind::Return(Some(e)) => note(e),
                StmtKind::Return(None) => {}
            }
        });
    }
    table
}

/// Runs the complete learning pipeline over a shard-streaming corpus
/// source, holding at most one shard's event graphs in memory.
///
/// Held-out design: the same graphs serve as training data for ϕ and as
/// the candidate-extraction corpus, exactly as in the paper (the model is
/// not used to *verify* its own training edges — candidates are scored on
/// *non-existent* induced edges). The corpus is therefore traversed twice:
/// pass A analyzes each shard and collects training samples, pass B
/// re-analyzes and extracts candidates with the trained model.
///
/// The result is identical for every `opts.shard_size` (and to
/// [`run_pipeline`]): all per-shard computation is keyed on stable corpus
/// indices and merged in corpus order.
pub fn run_pipeline_streaming<S: CorpusSource + ?Sized>(
    source: &S,
    table: &ApiTable,
    opts: &PipelineOptions,
) -> PipelineResult {
    run_pipeline_cached(source, table, opts, None)
}

/// Reads a shard's cached payload, treating any failure — absence,
/// corruption (already recorded by the store), or an undecodable payload —
/// as a miss.
fn cached_shard<T: for<'de> serde::Deserialize<'de>>(
    store: Option<&ArtifactStore>,
    key: uspec_store::Fingerprint,
) -> Option<T> {
    let bytes = store?.get(key).hit()?;
    let decoded = decode_payload(&bytes);
    if decoded.is_none() {
        uspec_telemetry::log_warn!("cache entry {key} has an undecodable payload; re-deriving");
    }
    decoded
}

/// Writes a shard's payload, degrading write failures (full disk,
/// permissions) to a warning — the cache is an accelerator, never a
/// correctness dependency.
fn store_shard<T: serde::Serialize>(
    store: &ArtifactStore,
    key: uspec_store::Fingerprint,
    payload: &T,
) {
    if let Err(e) = store.put(key, &encode_payload(payload)) {
        uspec_telemetry::log_warn!("cache write for {key} failed: {e}");
    }
}

/// Replays the `graph.*` counters a cache hit skipped. Those counters land
/// in the report's invariant `counters.metrics` map, so warm and cold runs
/// must account identically for the graphs the cold run built.
fn replay_graph_counters(graphs: u64, events: u64, edges: u64) {
    uspec_telemetry::counter!("graph.graphs_built").add(graphs);
    uspec_telemetry::counter!("graph.events").add(events);
    uspec_telemetry::counter!("graph.edges").add(edges);
}

/// Replays the duplicate filter over a shard whose analysis came from the
/// cache, returning the number of duplicates. Hits skip the frontend but
/// never the dedup pass: the filter's seen-set must be identical for later
/// shards (which may be cold), and the duplicate *count* is recomputed
/// live rather than trusted from the entry.
fn replay_dedup(dedup: &mut DedupFilter, shard: &Shard) -> usize {
    let mut duplicates = 0;
    for (_, _, source) in shard.iter() {
        if !dedup.keep(source) {
            duplicates += 1;
        }
    }
    duplicates
}

/// [`run_pipeline_streaming`] with an optional persistent artifact store.
///
/// With `Some(store)`, each shard's pass-A output (analysis stats delta +
/// training samples) and pass-B output (extracted candidates) is looked up
/// by a content fingerprint covering the shard, everything before it, the
/// analysis-relevant options, and — for pass B — the whole corpus (see
/// [`crate::cache`]). Hits skip parsing, lowering, points-to analysis, and
/// graph construction for that shard; misses compute live and populate the
/// store. The result is byte-identical with and without a store, warm or
/// cold — the cache can only change *how fast* an answer is produced,
/// never the answer.
pub fn run_pipeline_cached<S: CorpusSource + ?Sized>(
    source: &S,
    table: &ApiTable,
    opts: &PipelineOptions,
    store: Option<&ArtifactStore>,
) -> PipelineResult {
    let analyze = AnalyzeStage::new(table, opts);
    let opts_fp = options_fingerprint(opts);

    // Pass A: per-shard analysis and sample extraction, then SGD training.
    let sample = SampleStage::new(&opts.train);
    let mut stats = CorpusStats::default();
    let mut dedup = DedupFilter::new(opts.dedup);
    let mut samples: Vec<Sample> = Vec::new();
    let mut rolling = FpHasher::new();
    for shard in shards(source, opts.shard_size) {
        let key = analyze_key(opts_fp, rolling.digest(), shard_digest(&shard));
        match cached_shard::<ShardAnalysisPayload>(store, key) {
            Some(payload) => {
                let duplicates = replay_dedup(&mut dedup, &shard);
                let s = &payload.stats;
                replay_graph_counters(s.graphs, s.events, s.edges);
                let mut delta = payload.stats.into_stats();
                delta.duplicates = duplicates;
                stats.absorb(delta, opts.max_diagnostics);
                samples.extend(payload.samples);
            }
            None => {
                let (analyzed, delta) = analyze.run(&shard, &mut dedup);
                let shard_samples = sample.run(&analyzed);
                if let Some(s) = store {
                    let payload = ShardAnalysisPayload {
                        stats: StatsDelta::from_stats(&delta),
                        samples: shard_samples.clone(),
                    };
                    store_shard(s, key, &payload);
                }
                stats.absorb(delta, opts.max_diagnostics);
                samples.extend(shard_samples);
                // `analyzed` — this shard's event graphs — drops here.
            }
        }
        roll_shard(&mut rolling, &shard);
    }
    // The rolling digest now covers every corpus file: the identity of the
    // model the next pass scores with. The trained model itself is cached
    // under that digest — training is the one post-analysis stage heavy
    // enough that replaying it would dominate a warm run.
    let corpus_fp = rolling.digest();
    let mkey = model_key(opts_fp, corpus_fp);
    let model = match cached_shard::<uspec_model::ModelSnapshot>(store, mkey) {
        Some(snap) => EdgeModel::from_snapshot(snap),
        None => {
            let model = {
                let _span = uspec_telemetry::span!("stage.train", "samples={}", samples.len());
                EdgeModel::train(&samples, &opts.train)
            };
            if let Some(s) = store {
                store_shard(s, mkey, &model.snapshot());
            }
            model
        }
    };
    drop(samples);

    // Pass B: re-analyze each shard and extract candidates with ϕ. Stats
    // deltas are discarded — pass A already accounted for them — except
    // the resident-graph high-water mark, which spans both passes.
    let extract = ExtractStage::new(&model, &opts.extract);
    let mut dedup = DedupFilter::new(opts.dedup);
    let mut candidates = CandidateSet::default();
    let mut provenance = ProvenanceIndex::default();
    let mut rolling = FpHasher::new();
    for shard in shards(source, opts.shard_size) {
        let key = extract_key(opts_fp, corpus_fp, rolling.digest(), shard_digest(&shard));
        match cached_shard::<ShardExtractPayload>(store, key) {
            Some(payload) => {
                replay_dedup(&mut dedup, &shard);
                replay_graph_counters(payload.graphs, payload.events, payload.edges);
                let (set, prov) = payload.into_parts();
                candidates.merge(set);
                provenance.merge(prov);
            }
            None => {
                let (analyzed, delta) = analyze.run(&shard, &mut dedup);
                stats.peak_resident_graphs =
                    stats.peak_resident_graphs.max(delta.peak_resident_graphs);
                let (set, prov) = extract.run(&analyzed);
                if let Some(s) = store {
                    store_shard(
                        s,
                        key,
                        &ShardExtractPayload::from_candidates(&set, &prov, &delta),
                    );
                }
                candidates.merge(set);
                provenance.merge(prov);
            }
        }
        roll_shard(&mut rolling, &shard);
    }
    // Counterfactuals depend on the *merged* Γ lists, so they are attached
    // once here — after every shard merged, warm or cold — never inside a
    // cached payload.
    provenance.attach_counterfactuals(&candidates, opts.score_fn);

    let learned = LearnedSpecs::from_candidates(&candidates, opts.score_fn);
    PipelineResult {
        learned,
        candidates,
        model_stats: model.stats().clone(),
        corpus: stats,
        provenance,
    }
}

/// Runs the complete learning pipeline over in-memory `(name, source)`
/// pairs as a single batch.
///
/// This is a thin wrapper over [`run_pipeline_streaming`] with one
/// all-corpus shard; `opts.shard_size` is ignored. It produces exactly the
/// same result as the streaming form — the difference is only that every
/// event graph is resident at once (see
/// [`CorpusStats::peak_resident_graphs`]).
pub fn run_pipeline(
    sources: &[(String, String)],
    table: &ApiTable,
    opts: &PipelineOptions,
) -> PipelineResult {
    let batch = PipelineOptions {
        shard_size: usize::MAX,
        ..opts.clone()
    };
    run_pipeline_streaming(&SliceSource::new(sources), table, &batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_corpus::{generate_corpus, java_library, GenOptions};
    use uspec_lang::MethodId;
    use uspec_pta::Spec;

    #[test]
    fn small_end_to_end_run_learns_hashmap_spec() {
        let lib = java_library();
        let table = lib.api_table();
        let files = generate_corpus(
            &lib,
            &GenOptions {
                num_files: 500,
                seed: 11,
                ..GenOptions::default()
            },
        );
        let sources: Vec<(String, String)> =
            files.into_iter().map(|f| (f.name, f.source)).collect();
        let result = run_pipeline(&sources, &table, &PipelineOptions::default());

        assert!(result.corpus.failures == 0, "all files analyze");
        assert!(result.corpus.graphs > result.corpus.files / 2);
        assert!(!result.learned.is_empty(), "candidates found");
        assert_eq!(
            result.corpus.peak_resident_graphs, result.corpus.graphs,
            "batch mode holds the whole corpus"
        );

        let get = MethodId::new("java.util.HashMap", "get", 1);
        let put = MethodId::new("java.util.HashMap", "put", 2);
        let spec = Spec::RetArg {
            target: get,
            source: put,
            x: 2,
        };
        let entry = result.learned.get(&spec).unwrap_or_else(|| {
            panic!(
                "HashMap RetArg candidate missing: {:?}",
                result.learned.scored.iter().take(10).collect::<Vec<_>>()
            )
        });
        assert!(
            entry.score > 0.6,
            "HashMap.get/put should score high, got {}",
            entry.score
        );

        let db = result.select(0.6);
        assert!(db.contains(&spec));
        // §5.4 closure: the implied RetSame(get) is present too.
        assert!(db.has_ret_same(get));
    }

    #[test]
    fn failures_produce_capped_diagnostics() {
        let lib = java_library();
        let table = lib.api_table();
        let mut sources: Vec<(String, String)> = vec![
            (
                "ok.u".into(),
                "fn main(db) { f = db.getFile(\"x\"); f.getName(); }".into(),
            ),
            ("bad_parse.u".into(), "fn main( {".into()),
            ("bad_lower.u".into(), "fn main() { y = x; }".into()),
        ];
        for i in 0..10 {
            sources.push((format!("bad{i}.u"), format!("fn broken{i}( {{")));
        }
        let opts = PipelineOptions {
            max_diagnostics: 4,
            ..PipelineOptions::default()
        };
        let result = run_pipeline(&sources, &table, &opts);
        assert_eq!(result.corpus.files, 1);
        assert_eq!(result.corpus.failures, 12, "every bad file counted");
        assert_eq!(result.corpus.diagnostics.len(), 4, "records capped");
        use crate::stage::DiagnosticKind;
        let d = &result.corpus.diagnostics[0];
        assert_eq!(d.file, "bad_parse.u");
        assert!(matches!(
            d.kind,
            DiagnosticKind::Frontend {
                stage: crate::stage::AnalysisStage::Parse,
                ..
            }
        ));
        let d = &result.corpus.diagnostics[1];
        assert_eq!(d.file, "bad_lower.u");
        assert!(matches!(
            d.kind,
            DiagnosticKind::Frontend {
                stage: crate::stage::AnalysisStage::Lower,
                ..
            }
        ));
        assert!(
            d.to_string().contains("bad_lower.u"),
            "display names the file"
        );
    }

    #[test]
    fn non_converged_bodies_are_counted_and_diagnosed() {
        use crate::stage::DiagnosticKind;
        let lib = java_library();
        let table = lib.api_table();
        // A field read *before* its write: the stored fact flows backwards
        // through the heap, so the analysis needs a second pass — which a
        // cap of 1 forbids.
        let sources = vec![(
            "feedback.u".into(),
            "class Box { fn noop(self) { return self; } }\n\
             fn main(db) {\n\
                 b = new Box();\n\
                 x = b.item;\n\
                 b.item = db.getFile(\"a\");\n\
                 y = x;\n\
             }"
            .to_owned(),
        )];
        let capped = PipelineOptions {
            pta: uspec_pta::PtaOptions {
                max_passes: 1,
                ..uspec_pta::PtaOptions::default()
            },
            ..PipelineOptions::default()
        };
        let result = run_pipeline(&sources, &table, &capped);
        assert_eq!(result.corpus.failures, 0, "the file itself analyzes");
        assert_eq!(result.corpus.non_converged, 1);
        assert_eq!(result.corpus.totals().non_converged, 1);
        let d = result
            .corpus
            .diagnostics
            .iter()
            .find(|d| matches!(d.kind, DiagnosticKind::NonConverged { .. }))
            .expect("non-convergence diagnostic recorded");
        assert_eq!(d.file, "feedback.u");
        let DiagnosticKind::NonConverged { ref func, passes } = d.kind else {
            unreachable!()
        };
        assert_eq!(func, "main");
        assert_eq!(passes, 1);
        assert!(d.to_string().contains("not converged"), "{d}");

        // At the default cap the same corpus converges cleanly.
        let ok = run_pipeline(&sources, &table, &PipelineOptions::default());
        assert_eq!(ok.corpus.non_converged, 0);
        assert!(ok.corpus.diagnostics.is_empty());
    }
}

#[cfg(test)]
mod dedup_tests {
    use super::*;
    use uspec_corpus::{generate_corpus, java_library, GenOptions};

    #[test]
    fn duplicate_files_are_pruned() {
        let lib = java_library();
        let table = lib.api_table();
        let files = generate_corpus(
            &lib,
            &GenOptions {
                num_files: 60,
                seed: 2,
                ..GenOptions::default()
            },
        );
        // Simulate forks: every file appears three times.
        let mut sources: Vec<(String, String)> = Vec::new();
        for round in 0..3 {
            for f in &files {
                sources.push((format!("fork{round}/{}", f.name), f.source.clone()));
            }
        }
        let opts = PipelineOptions::default();
        let result = run_pipeline(&sources, &table, &opts);
        assert_eq!(result.corpus.duplicates, 120);
        assert_eq!(result.corpus.files, 60);

        // With dedup disabled the duplicates are all analyzed — and every
        // candidate's match count triples.
        let no_dedup = PipelineOptions {
            dedup: false,
            ..PipelineOptions::default()
        };
        let raw = run_pipeline(&sources, &table, &no_dedup);
        assert_eq!(raw.corpus.files, 180);
        let deduped_total: usize = result.learned.scored.iter().map(|s| s.matches).sum();
        let raw_total: usize = raw.learned.scored.iter().map(|s| s.matches).sum();
        assert_eq!(raw_total, 3 * deduped_total, "forks inflate match counts");
    }
}
