//! Assembling a [`RunReport`] from a pipeline run.
//!
//! The CLI's `--metrics-out` flag serializes the report this module
//! builds. Deterministic sections (`counters`, `diagnostics`) come from
//! the per-run result structures — [`PipelineResult`], its
//! [`CorpusStats`](crate::CorpusStats) and [`PtaAggregate`] — plus the
//! global counter registry; the `timings` section snapshots span
//! aggregates, gauges, and histograms, which are wall-clock and therefore
//! machine-local.

use uspec_learn::ProvenanceIndex;
use uspec_pta::PtaAggregate;
use uspec_telemetry::{
    attribution, metrics, span, window, AttributionSection, CacheSection, CandidateCounters,
    CorpusCounters, DiagnosticsSection, JobKindStats, JobsSection, ModelCounters,
    ProvenanceSection, PtaCounters, RunReport, ServeSection, SloSection, TimingsSection,
};

use crate::pipeline::{PipelineOptions, PipelineResult};

/// Converts a [`PtaAggregate`] into the report's `counters.pta` section.
pub fn pta_counters(agg: &PtaAggregate) -> PtaCounters {
    PtaCounters {
        bodies: agg.bodies as u64,
        passes: agg.passes as u64,
        propagations: agg.propagations as u64,
        constraints: agg.constraints as u64,
        non_converged: agg.non_converged as u64,
        pass_histogram: agg
            .pass_histogram()
            .iter()
            .map(|(&passes, &bodies)| (passes as u64, bodies as u64))
            .collect(),
    }
}

/// Snapshots the artifact-store counters and incident log into the
/// report's machine-local `timings.cache` section. All zeros/empty when no
/// store was configured.
pub fn cache_section() -> CacheSection {
    let counters = metrics::global().snapshot().counters;
    let get = |name: &str| counters.get(name).copied().unwrap_or(0);
    CacheSection {
        lookups: get("store.lookup"),
        hits: get("store.hit"),
        misses: get("store.miss"),
        bytes_read: get("store.bytes_read"),
        bytes_written: get("store.bytes_written"),
        evicted: get("store.evicted"),
        corrupt: get("store.corrupt"),
        incidents: uspec_store::incidents::snapshot(),
    }
}

/// Summarizes a [`ProvenanceIndex`] into the report's invariant
/// `provenance` section: per-spec retained/total evidence counts in `Spec`
/// order, plus corpus-wide totals. The per-spec cap means retained ≤
/// total; the overflow is reported, never silently dropped.
pub fn provenance_section(index: &ProvenanceIndex) -> ProvenanceSection {
    let mut section = ProvenanceSection {
        specs: index.len() as u64,
        ..ProvenanceSection::default()
    };
    for (spec, sp) in index.iter() {
        let retained = sp.evidence.len() as u64;
        section.evidence_total += sp.total;
        section.evidence_retained += retained;
        section.evidence_overflow += sp.overflow();
        section
            .per_spec
            .push((spec.to_string(), retained, sp.total));
    }
    section
}

/// Snapshots the job-engine counters into the report's machine-local
/// `timings.jobs` section. All zeros when the run predates the job engine
/// or scheduled nothing.
pub fn jobs_section() -> JobsSection {
    let counters = metrics::global().snapshot().counters;
    let get = |name: &str| counters.get(name).copied().unwrap_or(0);
    JobsSection {
        executed: get("jobs.executed"),
        reused: get("jobs.reused"),
        invalidated: get("jobs.invalidated"),
        kinds: uspec_jobs::ALL_KINDS
            .iter()
            .map(|kind| {
                let k = kind.as_str();
                (
                    k.to_owned(),
                    JobKindStats {
                        executed: get(&format!("jobs.{k}.executed")),
                        memo_hits: get(&format!("jobs.{k}.memo_hits")),
                        store_hits: get(&format!("jobs.{k}.store_hits")),
                        store_misses: get(&format!("jobs.{k}.store_misses")),
                    },
                )
            })
            .collect(),
    }
}

/// Snapshots the `serve.*` counters into the report's machine-local
/// `timings.serve` section. All zeros for batch commands; the spec-query
/// daemon (`uspec serve`) increments them as it answers traffic.
/// Per-method rows come from the `serve.method.<name>` counter namespace,
/// so the section needs no compile-time list of protocol methods — the
/// same goes for the `serve.<stream>` window rows, the slow-query log,
/// and the `serve.slo.*` sentinel counters.
pub fn serve_section() -> ServeSection {
    let snap = metrics::global().snapshot();
    let counters = snap.counters;
    let get = |name: &str| counters.get(name).copied().unwrap_or(0);
    const METHOD_PREFIX: &str = "serve.method.";
    const WINDOW_PREFIX: &str = "serve.";
    ServeSection {
        requests: get("serve.requests"),
        rejected: get("serve.rejected"),
        errors: get("serve.errors"),
        batches: get("serve.batches"),
        connections: get("serve.connections"),
        relearns: get("serve.relearns"),
        watch_scans: get("serve.watch.scans"),
        by_method: counters
            .iter()
            .filter_map(|(name, &n)| name.strip_prefix(METHOD_PREFIX).map(|m| (m.to_owned(), n)))
            .collect(),
        windows: window::global()
            .snapshot_latest()
            .into_iter()
            .filter_map(|(name, snap)| {
                let stream = name.strip_prefix(WINDOW_PREFIX)?;
                (snap.total_requests > 0).then(|| (stream.to_owned(), snap))
            })
            .collect(),
        slow: window::slow_log().snapshot(),
        slo: SloSection {
            breaches: get("serve.slo.breach"),
            p99_breaches: get("serve.slo.p99"),
            error_rate_breaches: get("serve.slo.error_rate"),
            staleness_breaches: get("serve.slo.staleness"),
            max_staleness_ms: snap.gauges.get("serve.staleness_ms").copied().unwrap_or(0),
        },
    }
}

/// How many jobs the `timings.attribution.top_self` ranking retains.
pub const ATTRIBUTION_TOP_N: usize = 10;

/// Rolls the job engine's per-key cost records into the report's
/// machine-local `timings.attribution` section, with per-kind rows in the
/// engine's scheduling order (aligning them with [`jobs_section`] for
/// cross-validation).
pub fn attribution_section() -> AttributionSection {
    let kinds: Vec<&str> = uspec_jobs::ALL_KINDS.iter().map(|k| k.as_str()).collect();
    attribution::section(&kinds, ATTRIBUTION_TOP_N)
}

/// Snapshots the global telemetry state into a report's [`TimingsSection`].
/// `total_seconds` is the caller-measured end-to-end wall time.
pub fn timings_section(total_seconds: f64) -> TimingsSection {
    let snap = metrics::global().snapshot();
    TimingsSection {
        total_seconds,
        spans: span::snapshot(),
        gauges: snap.gauges,
        histograms: snap.histograms,
        cache: cache_section(),
        jobs: jobs_section(),
        attribution: attribution_section(),
        serve: serve_section(),
    }
}

/// Builds the full run report for a completed pipeline run.
///
/// `tau` is the selection threshold the command applied (`0.0` when the
/// command did no selection). Counters come from `result` and the global
/// registry; serializing [`RunReport::invariant`] of the returned report
/// is byte-identical across `opts.shard_size` values for the same corpus
/// and seed.
pub fn build_run_report(
    command: &str,
    result: &PipelineResult,
    opts: &PipelineOptions,
    tau: f64,
    total_seconds: f64,
) -> RunReport {
    let corpus = &result.corpus;
    let mut report = RunReport::new(command, &opts.pta.engine.to_string());

    report.counters.corpus = CorpusCounters {
        files: corpus.files as u64,
        failures: corpus.failures as u64,
        duplicates: corpus.duplicates as u64,
        graphs: corpus.graphs as u64,
        events: corpus.events as u64,
        edges: corpus.edges as u64,
    };
    report.counters.pta = pta_counters(&corpus.pta);
    report.counters.model = ModelCounters {
        samples_pos: result.model_stats.n_pos as u64,
        samples_neg: result.model_stats.n_neg as u64,
        models: result.model_stats.n_models as u64,
        epochs: result.model_stats.epoch_loss.len() as u64,
        epoch_loss: result.model_stats.epoch_loss.clone(),
        final_loss: result.model_stats.final_loss,
        train_accuracy: result.model_stats.train_accuracy,
    };
    report.counters.candidates = CandidateCounters {
        extracted: result.learned.scored.len() as u64,
        selected: result
            .learned
            .scored
            .iter()
            .filter(|s| s.score >= tau)
            .count() as u64,
        tau,
    };
    // Cache-state-dependent counters stay out of the invariant sections: a
    // warm run and a cold run must produce byte-identical invariant bytes.
    // `store.*` and `jobs.*` describe cache/engine behavior directly;
    // `graph.*` counts graphs *built*, which a store hit legitimately
    // skips; `corpus.*` counts files *generated*, and the model job only
    // regenerates the corpus stream when it actually retrains. All of them
    // are broken out in the machine-local `timings` section instead
    // (`timings.cache`, `timings.jobs`), and the graph totals remain
    // invariantly reported via `counters.corpus`, which comes from the
    // per-file stats payloads rather than live construction. `serve.*`
    // counts request traffic against a resident daemon, which is never
    // a function of the corpus — it lives in `timings.serve`.
    const CACHE_DEPENDENT: [&str; 5] = ["store.", "jobs.", "graph.", "corpus.", "serve."];
    report.counters.metrics = metrics::global()
        .snapshot()
        .counters
        .into_iter()
        .filter(|(name, _)| !CACHE_DEPENDENT.iter().any(|p| name.starts_with(p)))
        .collect();

    report.diagnostics = DiagnosticsSection {
        retained: corpus.diagnostics.iter().map(|d| d.to_string()).collect(),
        dropped: (corpus.failures + corpus.non_converged).saturating_sub(corpus.diagnostics.len())
            as u64,
        total_problems: (corpus.failures + corpus.non_converged) as u64,
    };

    report.provenance = provenance_section(&result.provenance);
    report.timings = timings_section(total_seconds);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_corpus::{generate_corpus, java_library, GenOptions};

    #[test]
    fn report_reflects_pipeline_result() {
        let lib = java_library();
        let table = lib.api_table();
        let files = generate_corpus(
            &lib,
            &GenOptions {
                num_files: 40,
                seed: 5,
                ..GenOptions::default()
            },
        );
        let sources: Vec<(String, String)> =
            files.into_iter().map(|f| (f.name, f.source)).collect();
        let opts = PipelineOptions::default();
        let result = crate::run_pipeline(&sources, &table, &opts);
        let report = build_run_report("learn", &result, &opts, 0.6, 0.5);

        assert_eq!(report.schema, uspec_telemetry::REPORT_SCHEMA_VERSION);
        assert_eq!(report.command, "learn");
        assert_eq!(report.counters.corpus.files, result.corpus.files as u64);
        assert_eq!(report.counters.pta.bodies, result.corpus.pta.bodies as u64);
        assert!(
            report.counters.pta.bodies >= report.counters.corpus.graphs,
            "every graph comes from an analyzed body"
        );
        let hist_bodies: u64 = report
            .counters
            .pta
            .pass_histogram
            .iter()
            .map(|&(_, n)| n)
            .sum();
        assert_eq!(hist_bodies, report.counters.pta.bodies);
        assert_eq!(
            report.counters.model.epochs as usize, opts.train.epochs,
            "one loss entry per epoch"
        );
        assert_eq!(
            report.counters.model.epoch_loss.last().copied().unwrap(),
            report.counters.model.final_loss
        );
        assert_eq!(report.counters.candidates.tau, 0.6);
        assert!(report.counters.candidates.extracted > 0);
        assert_eq!(report.diagnostics.total_problems, 0);
        assert_eq!(report.timings.total_seconds, 0.5);

        assert_eq!(report.provenance.specs, result.provenance.len() as u64);
        assert!(report.provenance.specs > 0, "evidence was recorded");
        assert_eq!(
            report.provenance.per_spec.len() as u64,
            report.provenance.specs
        );
        assert_eq!(
            report.provenance.evidence_total,
            report.provenance.evidence_retained + report.provenance.evidence_overflow
        );
        let spec_names: Vec<&str> = report
            .provenance
            .per_spec
            .iter()
            .map(|(s, _, _)| s.as_str())
            .collect();
        assert!(
            spec_names.iter().any(|s| s.contains("RetArg")),
            "per-spec rows name specs: {spec_names:?}"
        );

        // Attribution rows exist for every kind, in the same order as
        // timings.jobs (exact-total equality is pinned by the dedicated
        // ledger invariance suite, which owns a whole process).
        let attr = &report.timings.attribution;
        assert!(attr.records > 0, "pipeline demands recorded costs");
        let attr_kinds: Vec<&str> = attr.kinds.iter().map(|(k, _)| k.as_str()).collect();
        let job_kinds: Vec<&str> = report
            .timings
            .jobs
            .kinds
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(attr_kinds, job_kinds);
        assert!(!attr.top_self.is_empty());
    }
}
