//! Explicit pipeline stages over corpus shards.
//!
//! [`run_pipeline_streaming`](crate::run_pipeline_streaming) folds these
//! stages over one shard at a time:
//!
//! * [`AnalyzeStage`] — parse/lower/PTA each file of a shard into event
//!   graphs, recording per-shard [`CorpusStats`] and structured
//!   [`AnalysisDiagnostic`]s instead of silently dropping failures;
//! * [`SampleStage`] — extract §4.2 training samples from a shard's graphs
//!   with per-`(file, graph)` deterministic RNG streams;
//! * [`ExtractStage`] — run Alg. 1 over a shard's graphs, producing a
//!   [`CandidateSet`] mergeable across shards.
//!
//! Every stage is deterministic with respect to the *stable file index*
//! (corpus position), never the shard layout, which is what makes the
//! streaming pipeline's output invariant under `shard_size`.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use uspec_corpus::Shard;
use uspec_graph::EventGraph;
use uspec_lang::registry::ApiTable;
use uspec_lang::LangError;
use uspec_learn::{CandidateSet, ExtractOptions, Extractor, ProvenanceIndex};
use uspec_model::seed::mix_seed;
use uspec_model::{extract_samples, EdgeModel, Sample, TrainOptions};
use uspec_pta::{PtaAggregate, SpecDb};

use crate::pipeline::{analyze_source_staged, CorpusStats, PipelineOptions};

/// The frontend stage at which a file was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AnalysisStage {
    /// Lexing/parsing the source text.
    Parse,
    /// Lowering the AST against the API table.
    Lower,
}

impl std::fmt::Display for AnalysisStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisStage::Parse => write!(f, "parse"),
            AnalysisStage::Lower => write!(f, "lower"),
        }
    }
}

/// What went wrong (or was degraded) while analyzing one file.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub enum DiagnosticKind {
    /// The frontend rejected the file; it contributes no graphs.
    Frontend {
        /// Which stage rejected the file.
        stage: AnalysisStage,
        /// The underlying frontend error.
        error: LangError,
    },
    /// One function body's points-to analysis hit the `max_passes` cap
    /// before reaching its fixpoint. The truncated (sound-but-incomplete)
    /// result is still used, but the aliasing it reports may be missing
    /// facts — previously this was silently indistinguishable from a
    /// converged run.
    NonConverged {
        /// The entry function whose body was truncated.
        func: String,
        /// Rounds/passes executed before giving up (= `max_passes`).
        passes: usize,
    },
}

/// A structured record of one file that failed — or only partially
/// completed — analysis.
///
/// Replaces the old `analyze_source(..).ok()` silent swallowing: frontend
/// failures are still skipped (a corpus file that does not parse carries no
/// training signal) and non-converged bodies still contribute their
/// truncated graphs, but the *first* `max_diagnostics` records are kept in
/// [`CorpusStats::diagnostics`] so corpus problems are visible.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct AnalysisDiagnostic {
    /// File name as reported by the corpus source.
    pub file: String,
    /// What happened.
    pub kind: DiagnosticKind,
}

impl std::fmt::Display for AnalysisDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            DiagnosticKind::Frontend { stage, error } => {
                write!(f, "{}: {} error: {}", self.file, stage, error)
            }
            DiagnosticKind::NonConverged { func, passes } => write!(
                f,
                "{}: fn {}: points-to analysis not converged after {} passes",
                self.file, func, passes
            ),
        }
    }
}

/// Streaming duplicate filter (§7.1 dataset pruning), stateful across the
/// shards of one pass. Decisions depend only on file *content order*, so
/// replaying the same corpus — under any shard size — reproduces them.
pub struct DedupFilter {
    enabled: bool,
    seen: std::collections::HashSet<u64>,
}

impl DedupFilter {
    /// Creates a filter; when `enabled` is false every file is kept.
    pub fn new(enabled: bool) -> DedupFilter {
        DedupFilter {
            enabled,
            seen: std::collections::HashSet::new(),
        }
    }

    /// Whether `source` is the first occurrence of its content.
    pub fn keep(&mut self, source: &str) -> bool {
        !self.enabled || self.seen.insert(content_hash(source))
    }
}

/// A cheap content hash for duplicate pruning.
fn content_hash(src: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    src.hash(&mut h);
    h.finish()
}

/// Per-file frontend outcome: an [`AnalyzedFile`], or the stage and error
/// that rejected the file.
type FileAnalysis = Result<AnalyzedFile, (AnalysisStage, LangError)>;

/// One successfully analyzed file: its event graphs plus any bodies whose
/// points-to analysis was truncated at the pass cap.
#[derive(Debug, Default)]
pub struct AnalyzedFile {
    /// One event graph per entry function.
    pub graphs: Vec<EventGraph>,
    /// `(function name, passes executed)` for each body whose analysis hit
    /// `max_passes` without converging.
    pub non_converged: Vec<(String, usize)>,
    /// Solver statistics aggregated over the file's bodies.
    pub pta: PtaAggregate,
}

/// One shard's analysis output: event graphs grouped per file, tagged with
/// the file's stable corpus index and name (provenance records cite both).
#[derive(Debug, Default)]
pub struct AnalyzedShard {
    /// `(stable file index, file name, that file's event graphs)` in corpus
    /// order.
    pub graphs: Vec<(usize, String, Vec<EventGraph>)>,
}

impl AnalyzedShard {
    /// Total event graphs in the shard.
    pub fn num_graphs(&self) -> usize {
        self.graphs.iter().map(|(_, _, gs)| gs.len()).sum()
    }
}

/// Stage 1: parse, lower and analyze a shard's files into event graphs
/// (parallel across files), folding counts and capped diagnostics into a
/// [`CorpusStats`].
pub struct AnalyzeStage<'a> {
    table: &'a ApiTable,
    opts: &'a PipelineOptions,
}

impl<'a> AnalyzeStage<'a> {
    /// Creates the stage for one pipeline configuration.
    pub fn new(table: &'a ApiTable, opts: &'a PipelineOptions) -> AnalyzeStage<'a> {
        AnalyzeStage { table, opts }
    }

    /// Analyzes one shard. `dedup` carries duplicate state across shards.
    ///
    /// Returns the shard's graphs plus a *per-shard* [`CorpusStats`] delta
    /// — diagnostics capped at `max_diagnostics` within the shard (the
    /// global cap is re-applied by [`CorpusStats::absorb`], and since
    /// absorption preserves corpus order the retained set is identical to
    /// the old direct accumulation). The delta form is what makes a shard's
    /// analysis output self-contained and therefore cacheable.
    pub fn run(&self, shard: &Shard, dedup: &mut DedupFilter) -> (AnalyzedShard, CorpusStats) {
        let mut stats = CorpusStats::default();
        let _span = uspec_telemetry::span!(
            "stage.analyze",
            "shard@{} files={}",
            shard.start,
            shard.files.len()
        );
        // Shard structure is a streaming-configuration detail, so it is
        // recorded only as a histogram (reports place those under the
        // machine-local `timings` section; a counter here would break the
        // shard-size invariance of `counters.metrics`). The histogram's
        // `count` is the number of shards processed.
        uspec_telemetry::histogram!("pipeline.shard_files").record(shard.files.len() as u64);
        // Duplicate pruning is sequential (it is stateful), analysis of the
        // surviving files is parallel.
        let mut kept: Vec<(usize, &str, &str)> = Vec::new();
        for (idx, name, source) in shard.iter() {
            if dedup.keep(source) {
                kept.push((idx, name, source));
            } else {
                stats.duplicates += 1;
            }
        }

        let results: Vec<(usize, &str, FileAnalysis)> = kept
            .par_iter()
            .map(|&(idx, name, source)| {
                (
                    idx,
                    name,
                    analyze_source_staged(source, self.table, &SpecDb::empty(), self.opts),
                )
            })
            .collect();

        let mut out = AnalyzedShard::default();
        for (idx, name, result) in results {
            match result {
                Ok(file) => {
                    stats.files += 1;
                    stats.graphs += file.graphs.len();
                    for g in &file.graphs {
                        stats.events += g.num_events();
                        stats.edges += g.num_edges();
                    }
                    stats.pta.merge(&file.pta);
                    stats.non_converged += file.non_converged.len();
                    for (func, passes) in file.non_converged {
                        if stats.diagnostics.len() < self.opts.max_diagnostics {
                            stats.diagnostics.push(AnalysisDiagnostic {
                                file: name.to_owned(),
                                kind: DiagnosticKind::NonConverged { func, passes },
                            });
                        }
                    }
                    out.graphs.push((idx, name.to_owned(), file.graphs));
                }
                Err((stage, error)) => {
                    stats.failures += 1;
                    if stats.diagnostics.len() < self.opts.max_diagnostics {
                        stats.diagnostics.push(AnalysisDiagnostic {
                            file: name.to_owned(),
                            kind: DiagnosticKind::Frontend { stage, error },
                        });
                    }
                }
            }
        }
        stats.peak_resident_graphs = out.num_graphs();
        uspec_telemetry::gauge!("pipeline.peak_resident_graphs")
            .record_max(out.num_graphs() as u64);
        (out, stats)
    }
}

/// Stage 2: extract §4.2 training samples from an analyzed shard.
///
/// Each graph's RNG stream is keyed on `(stable file index, graph index
/// within the file)` via [`mix_seed`], so the samples — and therefore the
/// trained model — do not depend on how the corpus was sharded.
pub struct SampleStage<'a> {
    opts: &'a TrainOptions,
}

impl<'a> SampleStage<'a> {
    /// Creates the stage for one training configuration.
    pub fn new(opts: &'a TrainOptions) -> SampleStage<'a> {
        SampleStage { opts }
    }

    /// Extracts this shard's samples, in stable corpus order.
    pub fn run(&self, shard: &AnalyzedShard) -> Vec<Sample> {
        let _span = uspec_telemetry::span!("stage.sample", "graphs={}", shard.num_graphs());
        shard
            .graphs
            .par_iter()
            .map(|(file_idx, _name, graphs)| {
                let file_seed = mix_seed(self.opts.seed, *file_idx as u64);
                let mut samples = Vec::new();
                for (j, g) in graphs.iter().enumerate() {
                    let mut rng = ChaCha8Rng::seed_from_u64(mix_seed(file_seed, j as u64));
                    samples.extend(extract_samples(g, &mut rng, self.opts));
                }
                samples
            })
            .reduce(Vec::new, |mut a, b| {
                a.extend(b);
                a
            })
    }
}

/// Splits `len` items into at most `max_chunks` chunks of at least
/// `min_chunk` items, returning the chunk length.
pub(crate) fn chunk_len(len: usize, max_chunks: usize, min_chunk: usize) -> usize {
    min_chunk.max(len.div_ceil(max_chunks.max(1))).max(1)
}

/// Stage 3: run Alg. 1 candidate extraction over an analyzed shard.
///
/// The per-spec Γ lists come out in stable graph order: chunks preserve
/// graph order internally and [`CandidateSet::merge`] concatenates them in
/// chunk order, so the merged result is independent of both the chunking
/// here and the shard size upstream.
pub struct ExtractStage<'a> {
    model: &'a EdgeModel,
    opts: &'a ExtractOptions,
}

impl<'a> ExtractStage<'a> {
    /// Creates the stage for a trained edge model.
    pub fn new(model: &'a EdgeModel, opts: &'a ExtractOptions) -> ExtractStage<'a> {
        ExtractStage { model, opts }
    }

    /// Extracts this shard's candidates and the provenance of every scored
    /// induced edge. Provenance merging uses the same chunk-order discipline
    /// as the candidate merge, and [`ProvenanceIndex::merge`] re-ranks under
    /// a total order, so the index is invariant under chunking and shard
    /// size just like the Γ lists.
    pub fn run(&self, shard: &AnalyzedShard) -> (CandidateSet, ProvenanceIndex) {
        let _span = uspec_telemetry::span!("stage.extract", "graphs={}", shard.num_graphs());
        let graphs: Vec<(usize, &str, &EventGraph)> = shard
            .graphs
            .iter()
            .flat_map(|(idx, name, gs)| gs.iter().map(move |g| (*idx, name.as_str(), g)))
            .collect();
        let chunks: Vec<(CandidateSet, ProvenanceIndex)> = graphs
            .par_chunks(chunk_len(graphs.len(), 64, 16))
            .map(|chunk| {
                let mut ex = Extractor::new(self.model, self.opts.clone());
                for &(idx, name, g) in chunk {
                    ex.set_file(idx as u64, name);
                    ex.add_graph(g);
                }
                ex.finish_with_provenance()
            })
            .collect();
        let mut out = CandidateSet::default();
        let mut prov = ProvenanceIndex::default();
        for (c, p) in chunks {
            out.merge(c);
            prov.merge(p);
        }
        (out, prov)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_len_bounds_chunk_count_and_size() {
        // At most 64 chunks...
        for len in [
            0,
            1,
            15,
            16,
            64,
            100,
            1024,
            1025,
            64 * 16,
            64 * 16 + 1,
            10_000,
        ] {
            let c = chunk_len(len, 64, 16);
            assert!(c >= 1);
            assert!(
                len.div_ceil(c.max(1)) <= 64,
                "len {len}: {} chunks",
                len.div_ceil(c)
            );
            // ...and no chunk smaller than min unless the corpus itself is.
            assert!(c >= 16);
        }
        // The old expression `64.max(len / 64 + 1)` was off by one exactly
        // when len is a multiple of 64: for len = 64·64 it yields 65, i.e.
        // 64 chunks of 65 — one chunk short of the intended split.
        assert_eq!(chunk_len(64 * 64, 64, 16), 64);
    }

    #[test]
    fn dedup_filter_is_content_keyed() {
        let mut d = DedupFilter::new(true);
        assert!(d.keep("a"));
        assert!(!d.keep("a"));
        assert!(d.keep("b"));
        let mut off = DedupFilter::new(false);
        assert!(off.keep("a"));
        assert!(off.keep("a"));
    }

    #[test]
    fn stage_display_is_lowercase() {
        assert_eq!(AnalysisStage::Parse.to_string(), "parse");
        assert_eq!(AnalysisStage::Lower.to_string(), "lower");
    }
}
