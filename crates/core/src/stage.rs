//! Per-file analysis outcomes and corpus-order bookkeeping shared by the
//! job pipeline.
//!
//! The shard-granular `AnalyzeStage`/`SampleStage`/`ExtractStage` fold of
//! earlier revisions is gone — the pipeline now schedules per-file
//! [`crate::jobs`] through the demand-driven engine. What remains here is
//! the vocabulary those jobs and their driver share:
//!
//! * [`AnalyzedFile`] / [`FileAnalysis`] — one file's frontend outcome;
//! * [`AnalysisDiagnostic`] — structured failure/degradation records,
//!   capped via `max_diagnostics` instead of silently dropped;
//! * [`DedupFilter`] — the sequential, content-ordered duplicate filter
//!   (§7.1 dataset pruning), run at plan time so job scheduling sees only
//!   kept files.
//!
//! Everything here is deterministic with respect to the *stable file
//! index* (corpus position), never the shard layout, which is what makes
//! the pipeline's output invariant under `shard_size`.

use uspec_graph::EventGraph;
use uspec_lang::LangError;
use uspec_pta::PtaAggregate;

/// The frontend stage at which a file was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AnalysisStage {
    /// Lexing/parsing the source text.
    Parse,
    /// Lowering the AST against the API table.
    Lower,
}

impl std::fmt::Display for AnalysisStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisStage::Parse => write!(f, "parse"),
            AnalysisStage::Lower => write!(f, "lower"),
        }
    }
}

/// What went wrong (or was degraded) while analyzing one file.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub enum DiagnosticKind {
    /// The frontend rejected the file; it contributes no graphs.
    Frontend {
        /// Which stage rejected the file.
        stage: AnalysisStage,
        /// The underlying frontend error.
        error: LangError,
    },
    /// One function body's points-to analysis hit the `max_passes` cap
    /// before reaching its fixpoint. The truncated (sound-but-incomplete)
    /// result is still used, but the aliasing it reports may be missing
    /// facts — previously this was silently indistinguishable from a
    /// converged run.
    NonConverged {
        /// The entry function whose body was truncated.
        func: String,
        /// Rounds/passes executed before giving up (= `max_passes`).
        passes: usize,
    },
}

/// A structured record of one file that failed — or only partially
/// completed — analysis.
///
/// Replaces the old `analyze_source(..).ok()` silent swallowing: frontend
/// failures are still skipped (a corpus file that does not parse carries no
/// training signal) and non-converged bodies still contribute their
/// truncated graphs, but the *first* `max_diagnostics` records are kept in
/// [`crate::CorpusStats::diagnostics`] so corpus problems are visible.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct AnalysisDiagnostic {
    /// File name as reported by the corpus source.
    pub file: String,
    /// What happened.
    pub kind: DiagnosticKind,
}

impl std::fmt::Display for AnalysisDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            DiagnosticKind::Frontend { stage, error } => {
                write!(f, "{}: {} error: {}", self.file, stage, error)
            }
            DiagnosticKind::NonConverged { func, passes } => write!(
                f,
                "{}: fn {}: points-to analysis not converged after {} passes",
                self.file, func, passes
            ),
        }
    }
}

/// Streaming duplicate filter (§7.1 dataset pruning), stateful across the
/// shards of one pass. Decisions depend only on file *content order*, so
/// replaying the same corpus — under any shard size — reproduces them.
pub struct DedupFilter {
    enabled: bool,
    seen: std::collections::HashSet<u64>,
}

impl DedupFilter {
    /// Creates a filter; when `enabled` is false every file is kept.
    pub fn new(enabled: bool) -> DedupFilter {
        DedupFilter {
            enabled,
            seen: std::collections::HashSet::new(),
        }
    }

    /// Whether `source` is the first occurrence of its content.
    pub fn keep(&mut self, source: &str) -> bool {
        !self.enabled || self.seen.insert(content_hash(source))
    }
}

/// A cheap content hash for duplicate pruning.
fn content_hash(src: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    src.hash(&mut h);
    h.finish()
}

/// Per-file frontend outcome: an [`AnalyzedFile`], or the stage and error
/// that rejected the file. The output type of the analyze job.
pub type FileAnalysis = Result<AnalyzedFile, (AnalysisStage, LangError)>;

/// One successfully analyzed file: its event graphs plus any bodies whose
/// points-to analysis was truncated at the pass cap.
#[derive(Debug, Default)]
pub struct AnalyzedFile {
    /// One event graph per entry function.
    pub graphs: Vec<EventGraph>,
    /// `(function name, passes executed)` for each body whose analysis hit
    /// `max_passes` without converging.
    pub non_converged: Vec<(String, usize)>,
    /// Solver statistics aggregated over the file's bodies.
    pub pta: PtaAggregate,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_filter_is_content_keyed() {
        let mut d = DedupFilter::new(true);
        assert!(d.keep("a"));
        assert!(!d.keep("a"));
        assert!(d.keep("b"));
        let mut off = DedupFilter::new(false);
        assert!(off.keep("a"));
        assert!(off.keep("a"));
    }

    #[test]
    fn stage_display_is_lowercase() {
        assert_eq!(AnalysisStage::Parse.to_string(), "parse");
        assert_eq!(AnalysisStage::Lower.to_string(), "lower");
    }
}
