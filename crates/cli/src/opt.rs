//! Minimal command-line option parser (no external dependencies).

use std::collections::BTreeMap;

/// Parsed options: `--key value` flags, `--switch` booleans, positionals.
#[derive(Clone, Debug, Default)]
pub struct Opts {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
    /// Positional arguments in order.
    pub positional: Vec<String>,
}

/// A CLI usage error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OptError(pub String);

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for OptError {}

impl Opts {
    /// Parses arguments; `value_flags` lists the `--flag`s that consume a
    /// value, everything else starting with `--` is a boolean switch.
    pub fn parse<I: IntoIterator<Item = String>>(
        args: I,
        value_flags: &[&str],
    ) -> Result<Opts, OptError> {
        let mut out = Opts::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            if arg == "-q" {
                // The one short flag: quiet mode (errors only).
                out.switches.push("q".to_owned());
            } else if let Some(name) = arg.strip_prefix("--") {
                if let Some((k, v)) = name.split_once('=') {
                    if !value_flags.contains(&k) {
                        return Err(OptError(format!("unknown option --{k}")));
                    }
                    out.values.insert(k.to_owned(), v.to_owned());
                } else if value_flags.contains(&name) {
                    let v = iter
                        .next()
                        .ok_or_else(|| OptError(format!("--{name} requires a value")))?;
                    out.values.insert(name.to_owned(), v);
                } else {
                    out.switches.push(name.to_owned());
                }
            } else {
                out.positional.push(arg);
            }
        }
        Ok(out)
    }

    /// Value of `--name`, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Value of `--name` or a default.
    pub fn value_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.value(name).unwrap_or(default)
    }

    /// Parses `--name` as a number.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, OptError> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| OptError(format!("--{name} expects a number, got `{v}`"))),
        }
    }

    /// Whether the boolean switch `--name` was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str], vals: &[&str]) -> Result<Opts, OptError> {
        Opts::parse(args.iter().map(|s| s.to_string()), vals)
    }

    #[test]
    fn parses_values_switches_positionals() {
        let o = parse(
            &["--lang", "java", "--dot", "file.u", "--tau=0.7", "other.u"],
            &["lang", "tau"],
        )
        .unwrap();
        assert_eq!(o.value("lang"), Some("java"));
        assert_eq!(o.value("tau"), Some("0.7"));
        assert!(o.switch("dot"));
        assert!(!o.switch("json"));
        assert_eq!(o.positional, vec!["file.u", "other.u"]);
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = parse(&["--lang"], &["lang"]).unwrap_err();
        assert!(err.0.contains("requires a value"));
    }

    #[test]
    fn unknown_eq_option_is_an_error() {
        let err = parse(&["--bogus=3"], &["lang"]).unwrap_err();
        assert!(err.0.contains("unknown option"));
    }

    #[test]
    fn short_q_is_a_switch() {
        let o = parse(&["-q", "file.u"], &[]).unwrap();
        assert!(o.switch("q"));
        assert_eq!(o.positional, vec!["file.u"]);
        assert!(!parse(&["file.u"], &[]).unwrap().switch("q"));
    }

    #[test]
    fn num_parsing() {
        let o = parse(&["--files", "250"], &["files"]).unwrap();
        assert_eq!(o.num::<usize>("files", 10).unwrap(), 250);
        assert_eq!(o.num::<usize>("seed", 42).unwrap(), 42);
        let bad = parse(&["--files", "abc"], &["files"]).unwrap();
        assert!(bad.num::<usize>("files", 0).is_err());
    }
}
