//! `uspec perf` — run-ledger inspection and the regression sentinel.
//!
//! `list`/`show` browse the append-only ledger a cached command wrote;
//! `diff` compares two entries (invariant counters exactly, timings with
//! a noise floor); `check` enforces the declarative budgets in
//! `perf-budgets.toml` and exits non-zero on any violation, which is what
//! CI runs.

use std::fs;
use std::path::{Path, PathBuf};

use uspec_store::LedgerDir;
use uspec_telemetry::ledger::{LedgerEntry, LEDGER_SCHEMA_VERSION};
use uspec_telemetry::perf::{BudgetStatus, Budgets, LedgerDiff};

use crate::commands::{cache_dir, init_logging};
use crate::opt::{OptError, Opts};

const USAGE: &str = "usage: uspec perf <list|show|diff|check> \
                     [--ledger DIR | --cache-dir DIR] [--budgets FILE] [--bench-dir DIR]";

/// `uspec perf`.
pub fn perf(args: Vec<String>) -> Result<(), OptError> {
    let opts = Opts::parse(
        args,
        &["cache-dir", "ledger", "budgets", "bench-dir", "log-level"],
    )?;
    init_logging(&opts)?;
    let action = opts
        .positional
        .first()
        .map(String::as_str)
        .ok_or_else(|| OptError(USAGE.into()))?;
    let dir = ledger_location(&opts)?;
    let ledger = LedgerDir::open(&dir)
        .map_err(|e| OptError(format!("opening ledger {}: {e}", dir.display())))?;
    match action {
        "list" => list(&ledger, &opts),
        "show" => show(&ledger, &opts),
        "diff" => diff(&ledger, &opts),
        "check" => check(&ledger, &opts),
        other => Err(OptError(format!(
            "unknown perf action `{other}`; expected list, show, diff, or check"
        ))),
    }
}

/// Resolves the ledger directory: `--ledger DIR` names it outright,
/// otherwise it is the `ledger/` namespace of the configured cache
/// directory (`--cache-dir` / `USPEC_CACHE_DIR`).
fn ledger_location(opts: &Opts) -> Result<PathBuf, OptError> {
    if let Some(dir) = opts.value("ledger") {
        return Ok(PathBuf::from(dir));
    }
    match cache_dir(opts) {
        Some(dir) => Ok(Path::new(&dir).join("ledger")),
        None => Err(OptError(
            "uspec perf needs --ledger DIR or --cache-dir DIR (or USPEC_CACHE_DIR)".into(),
        )),
    }
}

/// Loads and schema-checks one entry.
fn load_entry(ledger: &LedgerDir, id: &str) -> Result<LedgerEntry, OptError> {
    let json = ledger
        .read(id)
        .map_err(|e| OptError(format!("reading ledger entry {id}: {e}")))?;
    let entry: LedgerEntry = serde_json::from_str(&json)
        .map_err(|e| OptError(format!("parsing ledger entry {id}: {e}")))?;
    if entry.schema != LEDGER_SCHEMA_VERSION {
        return Err(OptError(format!(
            "ledger entry {id} has schema {}, this build reads schema {LEDGER_SCHEMA_VERSION}",
            entry.schema
        )));
    }
    Ok(entry)
}

/// Resolves an entry reference: a literal id, or the aliases `latest`
/// (newest entry) and `prev` (second newest).
fn resolve_id(ledger: &LedgerDir, what: &str) -> Result<String, OptError> {
    let ids = ledger
        .ids()
        .map_err(|e| OptError(format!("listing ledger: {e}")))?;
    let from_end = match what {
        "latest" => 1,
        "prev" => 2,
        id => {
            return ids
                .iter()
                .find(|i| i.as_str() == id)
                .cloned()
                .ok_or_else(|| OptError(format!("no ledger entry `{id}` (see `uspec perf list`)")))
        }
    };
    if ids.len() < from_end {
        return Err(OptError(format!(
            "`{what}` needs at least {from_end} ledger entr{}, found {}",
            if from_end == 1 { "y" } else { "ies" },
            ids.len()
        )));
    }
    Ok(ids[ids.len() - from_end].clone())
}

/// One `uspec perf list --json` row: the identifying slice of a ledger
/// entry (`perf show ID` retrieves the full record).
#[derive(serde::Serialize)]
struct ListRow {
    id: String,
    command: String,
    total_seconds: f64,
    digest: String,
    git_rev: String,
    host: String,
    timestamp_ms: u64,
    corpus_fp: String,
}

/// `uspec perf list [--json]`: one line (or JSON row) per entry, oldest
/// first.
fn list(ledger: &LedgerDir, opts: &Opts) -> Result<(), OptError> {
    let ids = ledger
        .ids()
        .map_err(|e| OptError(format!("listing ledger: {e}")))?;
    if opts.switch("json") {
        let rows: Vec<ListRow> = ids
            .iter()
            .map(|id| {
                let e = load_entry(ledger, id)?;
                Ok(ListRow {
                    id: id.clone(),
                    command: e.invariant.command,
                    total_seconds: e.timings.total_seconds,
                    digest: e.invariant.digest,
                    git_rev: e.envelope.git_rev,
                    host: e.envelope.host,
                    timestamp_ms: e.envelope.timestamp_ms,
                    corpus_fp: e.envelope.corpus_fp,
                })
            })
            .collect::<Result<_, OptError>>()?;
        let json = serde_json::to_string_pretty(&rows)
            .map_err(|e| OptError(format!("serializing list: {e}")))?;
        println!("{json}");
        return Ok(());
    }
    if ids.is_empty() {
        println!("ledger {}: no entries", ledger.dir().display());
        return Ok(());
    }
    for id in &ids {
        let e = load_entry(ledger, id)?;
        println!(
            "{id}  {:<7} {:>8.3}s  digest {}  {} @ {}",
            e.invariant.command,
            e.timings.total_seconds,
            &e.invariant.digest[..8.min(e.invariant.digest.len())],
            e.envelope.git_rev,
            e.envelope.host,
        );
    }
    Ok(())
}

/// `uspec perf show [ID] [--json]`: the full record (default: latest) —
/// pretty-printed for humans, one compact line with `--json` so scripted
/// callers can pipe entries without re-joining lines.
fn show(ledger: &LedgerDir, opts: &Opts) -> Result<(), OptError> {
    let what = opts
        .positional
        .get(1)
        .map(String::as_str)
        .unwrap_or("latest");
    let id = resolve_id(ledger, what)?;
    // Re-serialize the parsed entry rather than echoing the file: a schema
    // mismatch or corrupt record errors out instead of printing garbage.
    let entry = load_entry(ledger, &id)?;
    let json = if opts.switch("json") {
        serde_json::to_string(&entry)
    } else {
        serde_json::to_string_pretty(&entry)
    }
    .map_err(|e| OptError(format!("serializing ledger entry: {e}")))?;
    println!("{json}");
    Ok(())
}

/// `uspec perf diff [BEFORE AFTER]` (default: `prev latest`).
fn diff(ledger: &LedgerDir, opts: &Opts) -> Result<(), OptError> {
    let before_ref = opts.positional.get(1).map(String::as_str).unwrap_or("prev");
    let after_ref = opts
        .positional
        .get(2)
        .map(String::as_str)
        .unwrap_or("latest");
    let before_id = resolve_id(ledger, before_ref)?;
    let after_id = resolve_id(ledger, after_ref)?;
    let before = load_entry(ledger, &before_id)?;
    let after = load_entry(ledger, &after_id)?;
    let d = uspec_telemetry::perf::diff(&before, &after);
    print!("{}", render_diff(&before_id, &after_id, &d));
    Ok(())
}

/// Renders a [`LedgerDiff`]. The stable first lines (`invariant digest:
/// identical`, `counters: no drift`) are what CI greps for.
fn render_diff(before_id: &str, after_id: &str, d: &LedgerDiff) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "diff {before_id} .. {after_id}");
    let _ = writeln!(
        out,
        "invariant digest: {}",
        if d.digest_equal {
            "identical"
        } else {
            "DIFFERS"
        }
    );
    if d.counter_drift.is_empty() {
        let _ = writeln!(out, "counters: no drift");
    } else {
        let _ = writeln!(out, "counters: {} drifted", d.counter_drift.len());
        for c in &d.counter_drift {
            let _ = writeln!(out, "  {}: {} -> {}", c.name, c.before, c.after);
        }
    }
    if d.timing_deltas.is_empty() {
        let _ = writeln!(out, "timings: within noise");
    } else {
        let _ = writeln!(out, "timings: {} beyond noise", d.timing_deltas.len());
        for t in &d.timing_deltas {
            let ratio = if t.before > 0.0 {
                t.after / t.before
            } else {
                f64::INFINITY
            };
            let _ = writeln!(
                out,
                "  {}: {:.3}s -> {:.3}s ({ratio:.2}x)",
                t.name, t.before, t.after
            );
        }
    }
    out
}

/// `uspec perf check`: evaluate every budget in `--budgets FILE` (default
/// `perf-budgets.toml`) against the ledger; any FAIL is a hard error.
fn check(ledger: &LedgerDir, opts: &Opts) -> Result<(), OptError> {
    let budgets_path = opts.value_or("budgets", "perf-budgets.toml");
    let text = fs::read_to_string(budgets_path)
        .map_err(|e| OptError(format!("reading {budgets_path}: {e}")))?;
    let budgets = Budgets::parse(&text).map_err(|e| OptError(format!("{budgets_path}: {e}")))?;
    let ids = ledger
        .ids()
        .map_err(|e| OptError(format!("listing ledger: {e}")))?;
    let entries: Vec<LedgerEntry> = ids
        .iter()
        .map(|id| load_entry(ledger, id))
        .collect::<Result<_, _>>()?;
    let bench_dir = PathBuf::from(opts.value_or("bench-dir", "."));
    let outcomes = uspec_telemetry::perf::check(&budgets, &entries, &bench_dir);
    let mut failed = 0;
    for o in &outcomes {
        println!("{:<20} {:<5} {}", o.budget, o.status.as_str(), o.detail);
        if o.status == BudgetStatus::Fail {
            failed += 1;
        }
    }
    if failed > 0 {
        return Err(OptError(format!(
            "{failed} perf budget(s) violated (ledger {})",
            ledger.dir().display()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_telemetry::ledger::LedgerEnvelope;
    use uspec_telemetry::RunReport;

    fn tmp_ledger(name: &str) -> (PathBuf, LedgerDir) {
        let dir =
            std::env::temp_dir().join(format!("uspec-perf-cli-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        (dir.clone(), LedgerDir::open(&dir).unwrap())
    }

    fn entry(total_seconds: f64) -> String {
        let mut report = RunReport::new("eval", "worklist");
        report.counters.corpus.files = 100;
        report.timings.total_seconds = total_seconds;
        let e = LedgerEntry::from_report(
            &report,
            LedgerEnvelope {
                git_rev: "test".into(),
                host: "test".into(),
                timestamp_ms: 1,
                corpus_fp: "00".into(),
            },
        );
        serde_json::to_string_pretty(&e).unwrap()
    }

    #[test]
    fn aliases_resolve_and_diff_renders_clean_runs() {
        let (root, ledger) = tmp_ledger("alias");
        let a = ledger.append(&entry(2.0)).unwrap();
        let b = ledger.append(&entry(1.0)).unwrap();
        assert_eq!(resolve_id(&ledger, "latest").unwrap(), b);
        assert_eq!(resolve_id(&ledger, "prev").unwrap(), a);
        assert_eq!(resolve_id(&ledger, &a).unwrap(), a);
        assert!(resolve_id(&ledger, "nope").is_err());

        let before = load_entry(&ledger, &a).unwrap();
        let after = load_entry(&ledger, &b).unwrap();
        let rendered = render_diff(&a, &b, &uspec_telemetry::perf::diff(&before, &after));
        assert!(
            rendered.contains("invariant digest: identical"),
            "{rendered}"
        );
        assert!(rendered.contains("counters: no drift"), "{rendered}");
        assert!(
            rendered.contains("total_seconds: 2.000s -> 1.000s (0.50x)"),
            "{rendered}"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn perf_command_end_to_end_over_a_real_ledger() {
        let (root, ledger) = tmp_ledger("e2e");
        let flags = || {
            vec![
                "--ledger".to_owned(),
                root.display().to_string(),
                "-q".to_owned(),
            ]
        };
        // Empty ledger: list works, aliases do not resolve.
        perf([vec!["list".into()], flags()].concat()).unwrap();
        assert!(perf([vec!["show".into()], flags()].concat()).is_err());

        ledger.append(&entry(2.0)).unwrap();
        ledger.append(&entry(1.0)).unwrap();
        perf([vec!["list".into()], flags()].concat()).unwrap();
        perf([vec!["show".into(), "latest".into()], flags()].concat()).unwrap();
        perf([vec!["diff".into()], flags()].concat()).unwrap();
        perf([vec!["diff".into(), "prev".into(), "latest".into()], flags()].concat()).unwrap();
        assert!(perf([vec!["polish".into()], flags()].concat()).is_err());
        assert!(perf(vec!["list".into()]).is_err(), "no ledger configured");

        // check: a budgets file with only an invariant-drift cap passes
        // (identical invariants), and a zero-max warm-speedup style
        // violation is a hard error.
        let ok_budgets = root.join("ok.toml");
        fs::write(&ok_budgets, "[invariant_drift]\nmax_counters = 0\n").unwrap();
        perf(
            [
                vec![
                    "check".into(),
                    "--budgets".into(),
                    ok_budgets.display().to_string(),
                ],
                flags(),
            ]
            .concat(),
        )
        .unwrap();
        let strict = root.join("strict.toml");
        fs::write(&strict, "[warm_speedup]\nmin = 1e9\n").unwrap();
        let err = perf(
            [
                vec![
                    "check".into(),
                    "--budgets".into(),
                    strict.display().to_string(),
                ],
                flags(),
            ]
            .concat(),
        )
        .unwrap_err();
        assert!(err.0.contains("budget"), "{err}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn list_and_show_accept_json_mode() {
        let (root, ledger) = tmp_ledger("json");
        let flags = || {
            vec![
                "--ledger".to_owned(),
                root.display().to_string(),
                "--json".to_owned(),
                "-q".to_owned(),
            ]
        };
        // An empty ledger lists as an empty JSON array (not prose).
        perf([vec!["list".into()], flags()].concat()).unwrap();
        ledger.append(&entry(1.5)).unwrap();
        perf([vec!["list".into()], flags()].concat()).unwrap();
        perf([vec!["show".into(), "latest".into()], flags()].concat()).unwrap();
        // The row type carries the fields scripts key on.
        let e = load_entry(&ledger, &resolve_id(&ledger, "latest").unwrap()).unwrap();
        let row = ListRow {
            id: "x".into(),
            command: e.invariant.command,
            total_seconds: e.timings.total_seconds,
            digest: e.invariant.digest,
            git_rev: e.envelope.git_rev,
            host: e.envelope.host,
            timestamp_ms: e.envelope.timestamp_ms,
            corpus_fp: e.envelope.corpus_fp,
        };
        let json = serde_json::to_string(&row).unwrap();
        for key in [
            "\"id\"",
            "\"command\"",
            "\"total_seconds\"",
            "\"digest\"",
            "\"corpus_fp\"",
        ] {
            assert!(json.contains(key), "{json}");
        }
        let _ = fs::remove_dir_all(&root);
    }
}
