//! Implementations of the `uspec` subcommands.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use serde::{Deserialize, Serialize};
use uspec::{analyze_source, run_pipeline_cached, PipelineOptions};
use uspec_atlas::{evaluate, run_atlas, AtlasOptions, ClassStatus};
use uspec_clients::{check_taint, check_typestate, TaintConfig, TypestateProtocol};
use uspec_corpus::{
    generate_corpus, java_library, python_library, GenOptions, GeneratedSource, Library,
    SliceSource,
};
use uspec_lang::{lower_program, parse, LowerOptions, Symbol};
use uspec_learn::{LearnedSpecs, ProvenanceIndex};
use uspec_pta::{EngineKind, Pta, PtaAggregate, PtaOptions, SpecDb};
use uspec_store::{fingerprint_str, ArtifactStore};
use uspec_telemetry::{log_info, DiagnosticsSection, Level, RunReport};

use crate::opt::{OptError, Opts};

/// Version of the saved-specification file layout. Mirrors the run
/// report's schema discipline: bump on any breaking change so consumers
/// fail with a version message instead of a field-level parse error.
///
/// History: 1 — initial layout; 2 — added the `provenance` evidence index
/// consumed by `uspec explain`.
const SPEC_FILE_SCHEMA_VERSION: u32 = 2;

/// Saved output of `uspec learn`.
#[derive(Debug, Serialize, Deserialize)]
struct SpecFile {
    schema: u32,
    universe: String,
    tau: f64,
    files: usize,
    learned: LearnedSpecs,
    /// Evidence index restricted to the scored candidates, so
    /// `uspec explain` can trace any listed spec back to the corpus.
    provenance: ProvenanceIndex,
}

/// The version probe for [`load_specs`]: parsing just this against a spec
/// file distinguishes "wrong version" from "corrupt file" before the full
/// layout is attempted.
#[derive(Deserialize)]
struct SpecFileProbe {
    schema: u32,
}

pub(crate) fn library_for(opts: &Opts) -> Result<Library, OptError> {
    match opts.value_or("lang", "java") {
        "java" => Ok(java_library()),
        "python" => Ok(python_library()),
        other => Err(OptError(format!(
            "--lang must be java or python, got `{other}`"
        ))),
    }
}

fn io_err(e: std::io::Error, what: &str) -> OptError {
    OptError(format!("{what}: {e}"))
}

/// Parses `--engine naive|worklist` into an [`EngineKind`].
fn engine_for(opts: &Opts) -> Result<EngineKind, OptError> {
    match opts.value("engine") {
        None => Ok(EngineKind::default()),
        Some(v) => v.parse().map_err(OptError),
    }
}

/// Builds [`PipelineOptions`] from the shared analysis flags
/// (`--shard-size`, `--max-diagnostics`, `--engine`).
pub(crate) fn pipeline_opts(opts: &Opts) -> Result<PipelineOptions, OptError> {
    let defaults = PipelineOptions::default();
    let mut popts = PipelineOptions {
        shard_size: opts.num("shard-size", defaults.shard_size)?,
        max_diagnostics: opts.num("max-diagnostics", defaults.max_diagnostics)?,
        ..defaults
    };
    popts.pta.engine = engine_for(opts)?;
    Ok(popts)
}

/// Resolves the artifact-store directory: `--cache-dir` wins, then the
/// `USPEC_CACHE_DIR` environment variable; neither set means no cache.
pub(crate) fn cache_dir(opts: &Opts) -> Option<String> {
    opts.value("cache-dir").map(ToOwned::to_owned).or_else(|| {
        std::env::var("USPEC_CACHE_DIR")
            .ok()
            .filter(|s| !s.is_empty())
    })
}

/// Opens the artifact store configured by `--cache-dir`/`USPEC_CACHE_DIR`,
/// or `None` when caching is off.
fn cache_store(opts: &Opts) -> Result<Option<ArtifactStore>, OptError> {
    match cache_dir(opts) {
        None => Ok(None),
        Some(dir) => {
            let store = ArtifactStore::open(Path::new(&dir))
                .map_err(|e| io_err(e, "opening cache directory"))?;
            log_info!("artifact cache at {dir}");
            Ok(Some(store))
        }
    }
}

/// Applies the output-control flags (`-q`, `--log-level LEVEL`) before a
/// command does any work. `-q` wins when both are given.
pub(crate) fn init_logging(opts: &Opts) -> Result<(), OptError> {
    if opts.switch("q") {
        uspec_telemetry::log::set_level(Level::Error);
    } else if let Some(l) = opts.value("log-level") {
        let level: Level = l.parse().map_err(OptError)?;
        uspec_telemetry::log::set_level(level);
    }
    Ok(())
}

/// Renders the run-wide summary shared by `learn` and `eval` from the
/// assembled [`RunReport`]: analysis failures and truncated fixpoints (with
/// their capped diagnostics), the streaming memory bound, and the candidate
/// counts. The same report is what `--metrics-out` serializes, so the human
/// and machine views cannot drift apart.
fn render_summary(report: &RunReport) -> String {
    use std::fmt::Write as _;
    let c = &report.counters;
    let d = &report.diagnostics;
    let mut out = String::new();
    if d.total_problems > 0 {
        let _ = writeln!(
            out,
            "{} file(s) failed analysis, {} body(ies) not converged:",
            c.corpus.failures, c.pta.non_converged
        );
        for line in &d.retained {
            let _ = writeln!(out, "  {line}");
        }
        if d.dropped > 0 {
            let _ = writeln!(
                out,
                "  … and {} more (total {} failures)",
                d.dropped, d.total_problems
            );
        }
    }
    let j = &report.timings.jobs;
    let _ = writeln!(
        out,
        "jobs: {} executed, {} reused, {} invalidated",
        j.executed, j.reused, j.invalidated
    );
    // Histogram tails, from the same power-of-two-bucket snapshots the
    // report serializes (the bounds are inclusive bucket upper bounds).
    for (name, h) in &report.timings.histograms {
        if h.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{name}: n={} p50≤{} p95≤{} p99≤{}",
            h.count, h.p50, h.p95, h.p99
        );
    }
    let peak = report
        .timings
        .gauges
        .get("pipeline.peak_resident_graphs")
        .copied()
        .unwrap_or(0);
    let _ = writeln!(
        out,
        "peak resident event graphs: {peak} (of {} total)",
        c.corpus.graphs
    );
    if report.provenance.specs > 0 {
        let p = &report.provenance;
        let _ = write!(
            out,
            "provenance: {} evidence record(s) across {} spec(s)",
            p.evidence_retained, p.specs
        );
        if p.evidence_overflow > 0 {
            let _ = write!(
                out,
                " ({} more beyond the per-spec cap; totals in the report)",
                p.evidence_overflow
            );
        }
        let _ = writeln!(out);
    }
    let _ = write!(
        out,
        "{} event graphs, {} candidates",
        c.corpus.graphs, c.candidates.extracted
    );
    if report.command == "learn" {
        let _ = write!(
            out,
            ", {} selected at τ = {}",
            c.candidates.selected, c.candidates.tau
        );
    }
    out
}

/// Arms Chrome-trace span recording when `--trace-out` was given. Must run
/// before the command does any timed work so the timeline is complete.
fn arm_trace(opts: &Opts) {
    if opts.value("trace-out").is_some() {
        uspec_telemetry::trace::arm();
    }
}

/// Writes the recorded span timeline to `--trace-out PATH` (a Chrome
/// `trace_events` JSON document, loadable in Perfetto / `chrome://tracing`).
fn write_trace(opts: &Opts) -> Result<(), OptError> {
    let Some(path) = opts.value("trace-out") else {
        return Ok(());
    };
    fs::write(path, uspec_telemetry::trace::export_json())
        .map_err(|e| io_err(e, "writing trace"))?;
    log_info!("span timeline written to {path}");
    Ok(())
}

/// Serializes `report` to `--metrics-out PATH` when the flag is given.
pub(crate) fn write_metrics(opts: &Opts, report: &RunReport) -> Result<(), OptError> {
    let Some(path) = opts.value("metrics-out") else {
        return Ok(());
    };
    let json = serde_json::to_string_pretty(report)
        .map_err(|e| OptError(format!("serializing run report: {e}")))?;
    fs::write(path, json).map_err(|e| io_err(e, "writing metrics"))?;
    log_info!("metrics written to {path}");
    Ok(())
}

/// Where this run's ledger entry goes, if anywhere: `--no-ledger` turns
/// recording off, `--ledger DIR` names a directory outright, and otherwise
/// the entry rides along with the artifact cache under
/// `<cache-dir>/ledger/` (no cache configured means no ledger — a purely
/// ephemeral run leaves no history).
pub(crate) fn ledger_dest(opts: &Opts) -> Option<PathBuf> {
    if opts.switch("no-ledger") {
        return None;
    }
    match opts.value("ledger") {
        Some(dir) => Some(PathBuf::from(dir)),
        None => cache_dir(opts).map(|d| Path::new(&d).join("ledger")),
    }
}

/// Appends this run's report to the run ledger (see [`ledger_dest`]).
/// `corpus_fp` is the hex content fingerprint of what was analyzed, so
/// `uspec perf check` can tell comparable runs from corpus changes.
fn write_ledger(opts: &Opts, report: &RunReport, corpus_fp: &str) -> Result<(), OptError> {
    let Some(dir) = ledger_dest(opts) else {
        return Ok(());
    };
    let entry = uspec_telemetry::ledger::LedgerEntry::from_report(
        report,
        uspec_telemetry::ledger::envelope(corpus_fp),
    );
    let json = serde_json::to_string_pretty(&entry)
        .map_err(|e| OptError(format!("serializing ledger entry: {e}")))?;
    let ledger =
        uspec_store::LedgerDir::open(&dir).map_err(|e| io_err(e, "opening ledger directory"))?;
    let id = ledger
        .append(&json)
        .map_err(|e| io_err(e, "appending ledger entry"))?;
    log_info!("ledger entry {id} appended to {}", dir.display());
    Ok(())
}

/// Writes the per-job cost tree as collapsed-stack lines to
/// `--flame-out PATH` (one `kind;kind;kind self_ns` line per job,
/// renderable with any flamegraph tool).
fn write_flame(opts: &Opts) -> Result<(), OptError> {
    let Some(path) = opts.value("flame-out") else {
        return Ok(());
    };
    fs::write(path, uspec_telemetry::attribution::collapsed_stacks())
        .map_err(|e| io_err(e, "writing flamegraph stacks"))?;
    log_info!("collapsed flamegraph stacks written to {path}");
    Ok(())
}

/// `uspec generate`.
pub fn generate(args: Vec<String>) -> Result<(), OptError> {
    let opts = Opts::parse(args, &["lang", "files", "seed", "out", "log-level"])?;
    init_logging(&opts)?;
    let lib = library_for(&opts)?;
    let out = PathBuf::from(
        opts.value("out")
            .ok_or_else(|| OptError("--out DIR is required".into()))?,
    );
    fs::create_dir_all(&out).map_err(|e| io_err(e, "creating output directory"))?;
    let files = generate_corpus(
        &lib,
        &GenOptions {
            num_files: opts.num("files", 200)?,
            seed: opts.num("seed", 42)?,
            ..GenOptions::default()
        },
    );
    for f in &files {
        fs::write(out.join(&f.name), &f.source).map_err(|e| io_err(e, "writing file"))?;
    }
    log_info!("wrote {} files to {}", files.len(), out.display());
    Ok(())
}

/// Recursively collects `*.u` files under `root`.
fn collect_sources(root: &Path, out: &mut Vec<(String, String)>) -> Result<(), OptError> {
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "u") {
            let src = fs::read_to_string(root).map_err(|e| io_err(e, "reading source"))?;
            out.push((root.display().to_string(), src));
        }
        return Ok(());
    }
    let entries = fs::read_dir(root).map_err(|e| io_err(e, "reading directory"))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        collect_sources(&p, out)?;
    }
    Ok(())
}

/// `uspec learn`.
pub fn learn(args: Vec<String>) -> Result<(), OptError> {
    let opts = Opts::parse(
        args,
        &[
            "lang",
            "tau",
            "out",
            "shard-size",
            "max-diagnostics",
            "engine",
            "cache-dir",
            "dirty",
            "metrics-out",
            "trace-out",
            "flame-out",
            "ledger",
            "log-level",
        ],
    )?;
    init_logging(&opts)?;
    arm_trace(&opts);
    let start = Instant::now();
    let lib = library_for(&opts)?;
    let tau: f64 = opts.num("tau", 0.6)?;
    let mut popts = pipeline_opts(&opts)?;
    // `--dirty a.u,b.u`: distrust these files' cached entries and force
    // their per-file jobs to re-execute (see `PipelineOptions::dirty`).
    if let Some(list) = opts.value("dirty") {
        popts.dirty = list
            .split(',')
            .filter(|s| !s.is_empty())
            .map(ToOwned::to_owned)
            .collect();
    }
    if opts.positional.is_empty() {
        return Err(OptError("at least one corpus directory is required".into()));
    }
    let mut sources = Vec::new();
    for dir in &opts.positional {
        collect_sources(Path::new(dir), &mut sources)?;
    }
    if sources.is_empty() {
        return Err(OptError("no *.u files found".into()));
    }
    // `--dirty` entries must name corpus files (full name or final path
    // component, mirroring `PipelineOptions::dirty` matching) — a typo'd
    // name would otherwise be accepted and silently force nothing.
    let unknown: Vec<&str> = popts
        .dirty
        .iter()
        .filter(|d| {
            !sources.iter().any(|(name, _)| {
                name == *d || Path::new(name).file_name().is_some_and(|f| f == d.as_str())
            })
        })
        .map(String::as_str)
        .collect();
    if !unknown.is_empty() {
        return Err(OptError(format!(
            "--dirty names {} file(s) not in the corpus: {} \
             (entries match a corpus file's full name or final path component)",
            unknown.len(),
            unknown.join(", ")
        )));
    }
    log_info!(
        "learning from {} files (shards of {}) ...",
        sources.len(),
        popts.shard_size
    );
    let store = cache_store(&opts)?;
    let result = run_pipeline_cached(
        &SliceSource::new(&sources),
        &lib.api_table(),
        &popts,
        store.as_ref(),
    );
    let report =
        uspec::build_run_report("learn", &result, &popts, tau, start.elapsed().as_secs_f64());
    log_info!("{}", render_summary(&report));
    for s in result.learned.selected(tau) {
        println!(
            "  {:.3}  (matches: {:>4})  {:?}",
            s.score, s.matches, s.spec
        );
    }
    if let Some(path) = opts.value("out") {
        let mut provenance = result.provenance.clone();
        provenance.retain_specs(|s| result.learned.get(s).is_some());
        let file = SpecFile {
            schema: SPEC_FILE_SCHEMA_VERSION,
            universe: opts.value_or("lang", "java").to_owned(),
            tau,
            files: sources.len(),
            learned: result.learned.clone(),
            provenance,
        };
        let json = serde_json::to_string_pretty(&file)
            .map_err(|e| OptError(format!("serializing specs: {e}")))?;
        fs::write(path, json).map_err(|e| io_err(e, "writing spec file"))?;
        log_info!("saved to {path}");
    }
    write_metrics(&opts, &report)?;
    write_ledger(&opts, &report, &result.corpus_fingerprint.hex())?;
    write_flame(&opts)?;
    write_trace(&opts)?;
    Ok(())
}

fn load_specs(path: &str) -> Result<SpecFile, OptError> {
    let json = fs::read_to_string(path).map_err(|e| io_err(e, "reading spec file"))?;
    let probe: SpecFileProbe = serde_json::from_str(&json).map_err(|_| {
        OptError(format!(
            "{path}: not a spec file, or missing its `schema` version \
             (written before schema {SPEC_FILE_SCHEMA_VERSION}?) — re-run `uspec learn`"
        ))
    })?;
    if probe.schema != SPEC_FILE_SCHEMA_VERSION {
        return Err(OptError(format!(
            "{path}: spec file schema {} is not the supported schema \
             {SPEC_FILE_SCHEMA_VERSION} — re-run `uspec learn` with this build",
            probe.schema
        )));
    }
    serde_json::from_str(&json).map_err(|e| OptError(format!("parsing spec file: {e}")))
}

/// `uspec show`.
pub fn show(args: Vec<String>) -> Result<(), OptError> {
    let opts = Opts::parse(args, &["tau", "log-level"])?;
    init_logging(&opts)?;
    let path = opts
        .positional
        .first()
        .ok_or_else(|| OptError("a spec file is required".into()))?;
    let file = load_specs(path)?;
    let tau: f64 = opts.num("tau", file.tau)?;
    println!(
        "{}: learned from {} files ({} candidates, τ = {tau})",
        file.universe,
        file.files,
        file.learned.len()
    );
    for s in file.learned.selected(tau) {
        println!(
            "  {:.3}  (matches: {:>4})  {:?}",
            s.score, s.matches, s.spec
        );
    }
    Ok(())
}

/// `uspec explain`: render the evidence behind learned specifications —
/// which corpus call sites induced the scored edges, how the model judged
/// each (per-feature logit contributions), and what the score becomes
/// without the strongest piece of evidence.
pub fn explain(args: Vec<String>) -> Result<(), OptError> {
    let opts = Opts::parse(args, &["tau", "top", "log-level"])?;
    init_logging(&opts)?;
    let _span = uspec_telemetry::span!("cli.explain");
    let path = opts
        .positional
        .first()
        .ok_or_else(|| OptError("a spec file is required".into()))?;
    let file = load_specs(path)?;
    let tau: f64 = opts.num("tau", file.tau)?;
    let top: usize = opts.num("top", 4)?;
    let query = opts.positional.get(1).map(String::as_str);
    if query.is_none() && !opts.switch("all") {
        return Err(OptError(
            "usage: uspec explain FILE <spec substring> | --all [--json]".into(),
        ));
    }

    // Shared with the serve daemon's `explain` method — one producer keeps
    // batch and served answers byte-identical.
    let entries = uspec::explain_entries(&file.learned, &file.provenance, query);
    if entries.is_empty() {
        return Err(OptError(match query {
            Some(q) => format!("no learned spec matches `{q}` (try `uspec show {path}`)"),
            None => format!("{path}: spec file carries no provenance"),
        }));
    }

    if opts.switch("json") {
        let json = serde_json::to_string_pretty(&entries)
            .map_err(|e| OptError(format!("serializing explanation: {e}")))?;
        println!("{json}");
        return Ok(());
    }
    for e in &entries {
        println!("{}", e.spec);
        println!(
            "  score {:.3} (matches {}), evidence: {} of {} scored edge(s) retained{}",
            e.score,
            e.matches,
            e.evidence.len(),
            e.evidence_total,
            if e.evidence_overflow > 0 {
                format!(" ({} beyond cap)", e.evidence_overflow)
            } else {
                String::new()
            }
        );
        for (i, ev) in e.evidence.iter().enumerate() {
            println!(
                "  #{} {}:{} -> :{}  {}  {} -> {}  conf {:.3} (margin {:+.3}, bias {:+.3})",
                i + 1,
                ev.file,
                ev.line_src,
                ev.line_dst,
                ev.kind,
                ev.src_event,
                ev.dst_event,
                ev.conf,
                ev.margin,
                ev.bias
            );
            let feats: Vec<String> = ev
                .contributions
                .iter()
                .take(top)
                .map(|(label, w)| format!("{label} {w:+.3}"))
                .collect();
            if !feats.is_empty() {
                println!("      features: {}", feats.join(", "));
            }
        }
        if let Some(cf) = &e.counterfactual {
            let flip = if cf.score >= tau && cf.score_without < tau {
                format!(" — would fall below τ = {tau}")
            } else if cf.score < tau && cf.score_without >= tau {
                format!(" — would rise above τ = {tau}")
            } else {
                format!(" (selection at τ = {tau} unchanged)")
            };
            println!(
                "  without top evidence (conf {:.3}): score {:.3} -> {:.3}{flip}",
                cf.dropped_conf, cf.score, cf.score_without
            );
        }
    }
    Ok(())
}

/// `uspec analyze`.
pub fn analyze(args: Vec<String>) -> Result<(), OptError> {
    let opts = Opts::parse(
        args,
        &[
            "lang",
            "specs",
            "tau",
            "typestate",
            "taint",
            "engine",
            "cache-dir",
            "metrics-out",
            "trace-out",
            "ledger",
            "log-level",
        ],
    )?;
    init_logging(&opts)?;
    arm_trace(&opts);
    let start = Instant::now();
    // Dropped before the trace is written, so the timeline always carries
    // at least this one complete span covering the whole analysis.
    let analyze_span = uspec_telemetry::span!("cli.analyze");
    let lib = library_for(&opts)?;
    // analyze is a single-file command, so there is nothing to warm-start —
    // but it accepts the shared flag (validating/creating the directory) so
    // scripted invocations can pass one uniform flag set to every command.
    let _store = cache_store(&opts)?;
    let table = lib.api_table();
    let path = opts
        .positional
        .first()
        .ok_or_else(|| OptError("a source file is required".into()))?;
    let src = fs::read_to_string(path).map_err(|e| io_err(e, "reading source"))?;

    let specs = match opts.value("specs") {
        Some(p) => {
            let file = load_specs(p)?;
            let tau: f64 = opts.num("tau", file.tau)?;
            file.learned.select(tau)
        }
        None => SpecDb::empty(),
    };

    let program = parse(&src).map_err(|e| OptError(format!("{path}: {}", e.render(&src))))?;
    let bodies = lower_program(&program, &table, &LowerOptions::default())
        .map_err(|e| OptError(format!("{path}: {}", e.render(&src))))?;

    let pta_opts = PtaOptions {
        engine: engine_for(&opts)?,
        ..PtaOptions::default()
    };
    // Aggregated over the spec-augmented runs for `--metrics-out`.
    let mut agg = PtaAggregate::default();
    let mut problems: Vec<String> = Vec::new();
    for body in &bodies {
        println!("fn {}:", body.func);
        let base = Pta::run(body, &SpecDb::empty(), &pta_opts);
        let aug = Pta::run(body, &specs, &pta_opts);
        let s = &aug.stats;
        agg.record(s);
        if !s.converged {
            problems.push(format!(
                "fn {}: fixpoint not reached after {} passes",
                body.func, s.passes
            ));
        }
        println!(
            "  analysis: engine={} passes={} propagations={} constraints={} converged={}",
            s.engine, s.passes, s.propagations, s.constraints, s.converged
        );

        // Report the may-alias pairs between call returns that the
        // specifications add.
        let pairs = |pta: &Pta| -> Vec<(String, String)> {
            let recs: Vec<_> = pta.call_records().collect();
            let mut out = Vec::new();
            for i in 0..recs.len() {
                for j in (i + 1)..recs.len() {
                    if Pta::may_alias(&recs[i].ret, &recs[j].ret) {
                        out.push((recs[i].method.qualified(), recs[j].method.qualified()));
                    }
                }
            }
            out
        };
        let base_pairs = pairs(&base);
        let added: Vec<_> = pairs(&aug)
            .into_iter()
            .filter(|p| !base_pairs.contains(p))
            .collect();
        println!(
            "  return-value alias pairs (baseline): {}",
            base_pairs.len()
        );
        println!("  added by specifications: {}", added.len());
        for (a, b) in added.iter().take(20) {
            println!("    {a}.ret ~ {b}.ret");
        }

        if let Some(ts) = opts.value("typestate") {
            let (guard, action) = ts
                .split_once(':')
                .ok_or_else(|| OptError("--typestate expects guard:action".into()))?;
            let protocol = TypestateProtocol {
                guard: Symbol::intern(guard),
                action: Symbol::intern(action),
            };
            let violations = check_typestate(body, &aug, &protocol);
            println!(
                "  typestate ({guard}/{action}): {} violation(s)",
                violations.len()
            );
        }
        if let Some(t) = opts.value("taint") {
            let parts: Vec<&str> = t.split(':').collect();
            if parts.len() != 3 {
                return Err(OptError("--taint expects sources:sinks:sanitizers".into()));
            }
            let split = |s: &str| {
                s.split(',')
                    .filter(|x| !x.is_empty())
                    .map(|x| x.to_owned())
                    .collect::<Vec<_>>()
            };
            let config = TaintConfig::new(
                &split(parts[0])
                    .iter()
                    .map(String::as_str)
                    .collect::<Vec<_>>(),
                &split(parts[1])
                    .iter()
                    .map(String::as_str)
                    .collect::<Vec<_>>(),
                &split(parts[2])
                    .iter()
                    .map(String::as_str)
                    .collect::<Vec<_>>(),
            );
            let findings = check_taint(&aug, &config);
            println!("  taint: {} finding(s)", findings.len());
        }
    }
    drop(analyze_span);
    if opts.value("metrics-out").is_some() || ledger_dest(&opts).is_some() {
        let mut report = RunReport::new("analyze", &pta_opts.engine.to_string());
        report.counters.corpus.files = 1;
        report.counters.pta = uspec::pta_counters(&agg);
        report.counters.metrics = uspec_telemetry::metrics::global().snapshot().counters;
        report.diagnostics = DiagnosticsSection {
            dropped: 0,
            total_problems: problems.len() as u64,
            retained: problems,
        };
        report.timings = uspec::timings_section(start.elapsed().as_secs_f64());
        write_metrics(&opts, &report)?;
        write_ledger(&opts, &report, &fingerprint_str(&src).hex())?;
    }
    write_trace(&opts)?;
    Ok(())
}

/// `uspec graph`.
pub fn graph(args: Vec<String>) -> Result<(), OptError> {
    let opts = Opts::parse(args, &["lang", "log-level"])?;
    init_logging(&opts)?;
    let lib = library_for(&opts)?;
    let path = opts
        .positional
        .first()
        .ok_or_else(|| OptError("a source file is required".into()))?;
    let src = fs::read_to_string(path).map_err(|e| io_err(e, "reading source"))?;
    let graphs = analyze_source(&src, &lib.api_table(), &PipelineOptions::default())
        .map_err(|e| OptError(format!("{path}: {}", e.render(&src))))?;
    for g in &graphs {
        if opts.switch("dot") {
            println!("{}", g.to_dot());
        } else {
            println!(
                "event graph: {} events, {} edges",
                g.num_events(),
                g.num_edges()
            );
            for (site, info) in g.sites() {
                let n = g.event_ids().filter(|&e| g.event(e).site == site).count();
                println!("  {}  ({} events)", info.method, n);
            }
        }
    }
    Ok(())
}

/// `uspec report`: render a saved specification file as a Markdown report
/// grouped by API class, suitable for human review of the learned
/// specifications (the paper's "interpretable ... directly examined by an
/// expert" claim, §1).
pub fn report(args: Vec<String>) -> Result<(), OptError> {
    let opts = Opts::parse(args, &["tau", "out", "log-level"])?;
    init_logging(&opts)?;
    let path = opts
        .positional
        .first()
        .ok_or_else(|| OptError("a spec file is required".into()))?;
    let file = load_specs(path)?;
    let tau: f64 = opts.num("tau", file.tau)?;

    let mut by_class: std::collections::BTreeMap<String, Vec<&uspec_learn::ScoredSpec>> =
        Default::default();
    for s in file.learned.selected(tau) {
        by_class
            .entry(s.spec.class().as_str().to_owned())
            .or_default()
            .push(s);
    }
    let mut md = String::new();
    md.push_str(&format!(
        "# Learned API aliasing specifications

         - universe: **{}**
- corpus: **{}** files
- threshold: **τ = {tau}**
         - selected: **{}** of {} candidates, spanning **{}** classes

",
        file.universe,
        file.files,
        file.learned.selected(tau).count(),
        file.learned.len(),
        by_class.len()
    ));
    for (class, specs) in &by_class {
        md.push_str(&format!(
            "## `{class}`

"
        ));
        md.push_str(
            "| specification | score | matches |
|---|---|---|
",
        );
        let mut sorted = specs.clone();
        sorted.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite"));
        for s in sorted {
            md.push_str(&format!(
                "| `{:?}` | {:.3} | {} |
",
                s.spec, s.score, s.matches
            ));
        }
        md.push('\n');
    }
    match opts.value("out") {
        Some(out) => {
            fs::write(out, md).map_err(|e| io_err(e, "writing report"))?;
            log_info!("wrote report to {out}");
        }
        None => print!("{md}"),
    }
    Ok(())
}

/// `uspec eval`: run the full pipeline on a generated corpus and score the
/// learned candidates against the builtin ground truth (a CLI rendition of
/// Fig. 7).
pub fn eval(args: Vec<String>) -> Result<(), OptError> {
    let opts = Opts::parse(
        args,
        &[
            "lang",
            "files",
            "seed",
            "taus",
            "shard-size",
            "max-diagnostics",
            "engine",
            "cache-dir",
            "metrics-out",
            "trace-out",
            "flame-out",
            "ledger",
            "log-level",
        ],
    )?;
    init_logging(&opts)?;
    arm_trace(&opts);
    let start = Instant::now();
    let lib = library_for(&opts)?;
    let n: usize = opts.num("files", 1000)?;
    let seed: u64 = opts.num("seed", 42)?;
    let popts = pipeline_opts(&opts)?;
    let taus: Vec<f64> = opts
        .value_or("taus", "0.0,0.2,0.4,0.6,0.8,0.9")
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .map_err(|_| OptError(format!("bad τ value `{t}`")))
        })
        .collect::<Result<_, _>>()?;
    // Corpus files are generated on demand, shard by shard — the full
    // corpus text is never materialized.
    let gen = GenOptions {
        num_files: n,
        seed,
        ..GenOptions::default()
    };
    let store = cache_store(&opts)?;
    let result = run_pipeline_cached(
        &GeneratedSource::new(&lib, &gen),
        &lib.api_table(),
        &popts,
        store.as_ref(),
    );
    // eval sweeps over τ values rather than selecting at a single one, so
    // the report records τ = 0 (no selection).
    let report =
        uspec::build_run_report("eval", &result, &popts, 0.0, start.elapsed().as_secs_f64());
    log_info!("{}", render_summary(&report));
    let points = uspec::precision_recall(&result.learned, |s| lib.is_true_spec(s), &taus);
    println!(
        "{} files → {} candidates ({} classes)",
        n,
        result.learned.len(),
        result
            .learned
            .scored
            .iter()
            .map(|s| s.spec.class())
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    );
    println!(
        "{:>6}  {:>9}  {:>6}  {:>8}",
        "tau", "precision", "recall", "selected"
    );
    for p in points {
        println!(
            "{:>6.2}  {:>9.3}  {:>6.3}  {:>8}",
            p.tau, p.precision, p.recall, p.selected
        );
    }
    write_metrics(&opts, &report)?;
    write_ledger(&opts, &report, &result.corpus_fingerprint.hex())?;
    write_flame(&opts)?;
    write_trace(&opts)?;
    Ok(())
}

/// `uspec atlas`.
pub fn atlas(args: Vec<String>) -> Result<(), OptError> {
    let opts = Opts::parse(args, &["lang", "tests", "seed", "log-level"])?;
    init_logging(&opts)?;
    let lib = library_for(&opts)?;
    let results = run_atlas(
        &lib,
        &AtlasOptions {
            tests_per_class: opts.num("tests", 60)?,
            seed: opts.num("seed", 0xA71A5)?,
            ..AtlasOptions::default()
        },
    );
    let evals = evaluate(&lib, &results);
    for e in &evals {
        let status = match e.status {
            ClassStatus::Sound => format!("sound ({} flows)", e.found.len()),
            ClassStatus::Unsound => format!("UNSOUND (missed {})", e.missed.len()),
            ClassStatus::NoConstructor => "no constructor".to_owned(),
            ClassStatus::TriviallyEmpty => "empty".to_owned(),
        };
        println!("  {:<50} {status}", e.class.as_str());
    }
    Ok(())
}

/// `uspec cache <stats|verify|gc>` — inspect and maintain the artifact store.
pub fn cache(args: Vec<String>) -> Result<(), OptError> {
    let opts = Opts::parse(args, &["cache-dir", "max-bytes", "log-level"])?;
    init_logging(&opts)?;
    let action =
        opts.positional.first().map(String::as_str).ok_or_else(|| {
            OptError("usage: uspec cache <stats|verify|gc> --cache-dir DIR".into())
        })?;
    let dir = cache_dir(&opts)
        .ok_or_else(|| OptError("uspec cache needs --cache-dir DIR (or USPEC_CACHE_DIR)".into()))?;
    let store =
        ArtifactStore::open(Path::new(&dir)).map_err(|e| io_err(e, "opening cache directory"))?;
    let json = opts.switch("json");
    match action {
        "stats" => {
            let s = store.stats().map_err(|e| io_err(e, "scanning cache"))?;
            if json {
                #[derive(Serialize)]
                struct StatsJson {
                    dir: String,
                    entries: u64,
                    bytes: u64,
                }
                let doc = StatsJson {
                    dir: dir.clone(),
                    entries: s.entries,
                    bytes: s.bytes,
                };
                println!(
                    "{}",
                    serde_json::to_string_pretty(&doc)
                        .map_err(|e| OptError(format!("serializing cache stats: {e}")))?
                );
            } else {
                println!(
                    "cache {dir}: {} entr{}, {} bytes",
                    s.entries,
                    plural_y(s.entries),
                    s.bytes
                );
            }
        }
        "verify" => {
            let v = store.verify().map_err(|e| io_err(e, "scanning cache"))?;
            if json {
                #[derive(Serialize)]
                struct VerifyJson {
                    dir: String,
                    ok: u64,
                    corrupt: Vec<CorruptEntry>,
                }
                #[derive(Serialize)]
                struct CorruptEntry {
                    path: String,
                    reason: String,
                }
                let doc = VerifyJson {
                    dir: dir.clone(),
                    ok: v.ok,
                    corrupt: v
                        .corrupt
                        .iter()
                        .map(|(path, why)| CorruptEntry {
                            path: path.display().to_string(),
                            reason: why.clone(),
                        })
                        .collect(),
                };
                println!(
                    "{}",
                    serde_json::to_string_pretty(&doc)
                        .map_err(|e| OptError(format!("serializing cache verify: {e}")))?
                );
            } else {
                println!(
                    "cache {dir}: {} entr{} ok, {} corrupt",
                    v.ok,
                    plural_y(v.ok),
                    v.corrupt.len()
                );
                for (path, why) in &v.corrupt {
                    println!("  {}: {why}", path.display());
                }
            }
            if !v.corrupt.is_empty() {
                return Err(OptError(format!(
                    "{} corrupt entr{} (each will be treated as a miss and rewritten; \
                     delete the files or run `uspec cache gc` to reclaim the space)",
                    v.corrupt.len(),
                    plural_y(v.corrupt.len() as u64)
                )));
            }
        }
        "gc" => {
            let max_bytes: u64 = opts
                .value("max-bytes")
                .ok_or_else(|| {
                    OptError("uspec cache gc requires --max-bytes N (target size)".into())
                })?
                .parse()
                .map_err(|_| OptError("--max-bytes expects a number of bytes".into()))?;
            let g = store
                .gc(max_bytes)
                .map_err(|e| io_err(e, "collecting cache entries"))?;
            println!(
                "cache {dir}: evicted {} of {} entr{}, {} -> {} bytes",
                g.evicted,
                g.scanned,
                plural_y(g.scanned),
                g.bytes_before,
                g.bytes_after
            );
        }
        other => {
            return Err(OptError(format!(
                "unknown cache action `{other}`; expected stats, verify, or gc"
            )))
        }
    }
    Ok(())
}

fn plural_y(n: u64) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("uspec-cli-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn opts(args: &[&str], vals: &[&str]) -> Opts {
        Opts::parse(args.iter().map(|s| s.to_string()), vals).unwrap()
    }

    #[test]
    fn generate_then_learn_then_show_roundtrip() {
        let dir = tmpdir("roundtrip");
        let corpus = dir.join("corpus");
        let specs = dir.join("specs.json");
        generate(vec![
            "--lang".into(),
            "java".into(),
            "--files".into(),
            "120".into(),
            "--out".into(),
            corpus.display().to_string(),
        ])
        .unwrap();
        assert!(fs::read_dir(&corpus).unwrap().count() >= 120);

        let metrics = dir.join("metrics.json");
        learn(vec![
            "--lang".into(),
            "java".into(),
            "--shard-size".into(),
            "32".into(),
            "--max-diagnostics".into(),
            "5".into(),
            "--out".into(),
            specs.display().to_string(),
            "--metrics-out".into(),
            metrics.display().to_string(),
            corpus.display().to_string(),
        ])
        .unwrap();
        let loaded = load_specs(&specs.display().to_string()).unwrap();
        assert_eq!(loaded.universe, "java");
        assert!(!loaded.learned.is_empty());

        // --metrics-out wrote a parseable report for this run.
        let json = fs::read_to_string(&metrics).unwrap();
        let report: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report.schema, uspec_telemetry::REPORT_SCHEMA_VERSION);
        assert_eq!(report.command, "learn");
        assert_eq!(report.counters.corpus.files, 120);
        assert!(report.counters.candidates.extracted > 0);
        assert!(report.timings.total_seconds > 0.0);

        show(vec![specs.display().to_string()]).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn explain_renders_provenance_evidence() {
        let dir = tmpdir("explain");
        let corpus = dir.join("corpus");
        let specs = dir.join("specs.json");
        let trace = dir.join("trace.json");
        generate(vec![
            "--lang".into(),
            "java".into(),
            "--files".into(),
            "80".into(),
            "--out".into(),
            corpus.display().to_string(),
        ])
        .unwrap();
        learn(vec![
            "--lang".into(),
            "java".into(),
            "--out".into(),
            specs.display().to_string(),
            "--trace-out".into(),
            trace.display().to_string(),
            corpus.display().to_string(),
        ])
        .unwrap();

        // The spec file carries provenance, and every evidence record names
        // a corpus file and line, an edge kind, and feature contributions.
        let loaded = load_specs(&specs.display().to_string()).unwrap();
        assert!(!loaded.provenance.is_empty(), "provenance was saved");
        let mut records = 0;
        for (spec, sp) in loaded.provenance.iter() {
            assert!(
                loaded.learned.get(spec).is_some(),
                "provenance is retained only for scored specs: {spec}"
            );
            assert_eq!(sp.overflow(), sp.total - sp.evidence.len() as u64);
            for ev in &sp.evidence {
                assert!(ev.file.ends_with(".u"), "corpus file name: {}", ev.file);
                assert!(ev.line_src > 0, "known source line");
                assert!(!ev.kind.is_empty());
                assert!(!ev.contributions.is_empty(), "per-feature contributions");
                records += 1;
            }
            let cf = sp.counterfactual.as_ref().expect("counterfactual attached");
            assert_ne!(cf.score, cf.score_without, "dropping evidence moves score");
        }
        assert!(records > 0);

        // explain: substring match, --all, and --json all succeed; a bogus
        // query is an error rather than silent empty output.
        let path = specs.display().to_string();
        explain(vec![path.clone(), "RetArg".into()]).unwrap();
        explain(vec![path.clone(), "--all".into()]).unwrap();
        explain(vec![path.clone(), "--all".into(), "--json".into()]).unwrap();
        let err = explain(vec![path.clone(), "NoSuchSpec".into()]).unwrap_err();
        assert!(err.0.contains("NoSuchSpec"), "{err}");
        let err = explain(vec![path]).unwrap_err();
        assert!(err.0.contains("--all"), "{err}");

        // --trace-out wrote a Chrome trace_events document.
        let trace_json = fs::read_to_string(&trace).unwrap();
        assert!(
            trace_json.starts_with("{\"traceEvents\": ["),
            "{trace_json}"
        );
        assert!(trace_json.contains("\"ph\": \"X\""));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_file_schema_is_enforced() {
        let dir = tmpdir("spec-schema");
        // No `schema` field at all: a pre-versioning or foreign file.
        let unversioned = dir.join("old.json");
        fs::write(&unversioned, r#"{"universe": "java", "tau": 0.6}"#).unwrap();
        let err = load_specs(&unversioned.display().to_string()).unwrap_err();
        assert!(err.0.contains("schema"), "{err}");
        assert!(err.0.contains("uspec learn"), "{err}");

        // Wrong version: names both versions, not a field-level parse error.
        let future = dir.join("future.json");
        fs::write(&future, r#"{"schema": 99, "universe": "java"}"#).unwrap();
        let err = load_specs(&future.display().to_string()).unwrap_err();
        assert!(err.0.contains("99"), "{err}");
        assert!(
            err.0.contains(&SPEC_FILE_SCHEMA_VERSION.to_string()),
            "{err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn learn_rejects_dirty_names_absent_from_corpus() {
        let dir = tmpdir("dirty-validate");
        let corpus = dir.join("corpus");
        generate(vec![
            "--lang".into(),
            "java".into(),
            "--files".into(),
            "10".into(),
            "--out".into(),
            corpus.display().to_string(),
        ])
        .unwrap();
        let existing = fs::read_dir(&corpus)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .file_name()
            .into_string()
            .unwrap();
        // A basename that exists is accepted; unknown names are a hard
        // error that lists every offender.
        learn(vec![
            "--lang".into(),
            "java".into(),
            "--dirty".into(),
            existing.clone(),
            "-q".into(),
            corpus.display().to_string(),
        ])
        .unwrap();
        let err = learn(vec![
            "--lang".into(),
            "java".into(),
            "--dirty".into(),
            format!("{existing},ghost.u,typo.u"),
            "-q".into(),
            corpus.display().to_string(),
        ])
        .unwrap_err();
        assert!(err.0.contains("ghost.u"), "{err}");
        assert!(err.0.contains("typo.u"), "{err}");
        assert!(!err.0.contains(&existing), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_dir_flag_beats_environment() {
        let o = opts(&["--cache-dir", "/from/flag"], &["cache-dir"]);
        assert_eq!(cache_dir(&o), Some("/from/flag".to_owned()));
        // No flag, no env (the test env never sets it): caching is off.
        assert_eq!(cache_dir(&opts(&[], &["cache-dir"])), None);
    }

    #[test]
    fn learn_with_cache_dir_and_cache_maintenance() {
        let dir = tmpdir("cache-cli");
        let corpus = dir.join("corpus");
        let cache_root = dir.join("cache");
        let specs_cold = dir.join("cold.json");
        let specs_warm = dir.join("warm.json");
        generate(vec![
            "--lang".into(),
            "java".into(),
            "--files".into(),
            "80".into(),
            "--out".into(),
            corpus.display().to_string(),
        ])
        .unwrap();
        let learn_with = |out: &PathBuf| {
            learn(vec![
                "--lang".into(),
                "java".into(),
                "--shard-size".into(),
                "24".into(),
                "--cache-dir".into(),
                cache_root.display().to_string(),
                "--out".into(),
                out.display().to_string(),
                "-q".into(),
                corpus.display().to_string(),
            ])
            .unwrap();
        };
        learn_with(&specs_cold);
        learn_with(&specs_warm);
        assert_eq!(
            fs::read_to_string(&specs_cold).unwrap(),
            fs::read_to_string(&specs_warm).unwrap(),
            "warm learn must write byte-identical specs"
        );

        let cache_flag = || vec!["--cache-dir".into(), cache_root.display().to_string()];
        cache([vec!["stats".into()], cache_flag()].concat()).unwrap();
        cache([vec!["verify".into()], cache_flag()].concat()).unwrap();
        // gc to zero bytes evicts everything; verify still succeeds (empty).
        cache(
            [
                vec!["gc".into(), "--max-bytes".into(), "0".into()],
                cache_flag(),
            ]
            .concat(),
        )
        .unwrap();
        cache([vec!["verify".into()], cache_flag()].concat()).unwrap();

        // Usage errors are reported, not panicked.
        assert!(cache([vec!["polish".into()], cache_flag()].concat()).is_err());
        assert!(cache(vec!["stats".into()]).is_err(), "no directory given");
        assert!(
            cache([vec!["gc".into()], cache_flag()].concat()).is_err(),
            "gc without --max-bytes"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_caps_diagnostics_with_trailer() {
        let mut r = RunReport::new("learn", "worklist");
        r.counters.corpus.failures = 7;
        r.counters.corpus.graphs = 10;
        r.counters.pta.non_converged = 2;
        r.diagnostics = DiagnosticsSection {
            retained: vec!["a.u: parse error".into(), "b.u: parse error".into()],
            dropped: 5,
            total_problems: 9,
        };
        let s = render_summary(&r);
        assert!(s.contains("  a.u: parse error\n"), "{s}");
        assert!(s.contains("2 body(ies) not converged"), "{s}");
        assert!(s.contains("… and 5 more (total 9 failures)"), "{s}");

        // No trailer when nothing was dropped, no problem block when clean.
        r.diagnostics.dropped = 0;
        assert!(!render_summary(&r).contains("more (total"));
        r.diagnostics = DiagnosticsSection::default();
        let clean = render_summary(&r);
        assert!(!clean.contains("failed analysis"), "{clean}");
        assert!(clean.contains("10 total"), "{clean}");

        // Provenance counts appear once recorded, with the over-cap tally.
        assert!(!clean.contains("provenance:"), "{clean}");
        r.provenance = uspec_telemetry::ProvenanceSection {
            specs: 3,
            evidence_total: 16,
            evidence_retained: 12,
            evidence_overflow: 4,
            per_spec: Vec::new(),
        };
        let s = render_summary(&r);
        assert!(
            s.contains("provenance: 12 evidence record(s) across 3 spec(s)"),
            "{s}"
        );
        assert!(s.contains("4 more beyond the per-spec cap"), "{s}");
    }

    #[test]
    fn analyze_reports_added_aliasing() {
        let dir = tmpdir("analyze");
        let file = dir.join("prog.u");
        fs::write(
            &file,
            r#"
            fn main() {
                m = new java.util.HashMap();
                f = new java.io.File("x");
                m.put("k", f);
                a = m.get("k");
                b = m.get("k");
            }
            "#,
        )
        .unwrap();
        // Without specs: runs and reports zero additions.
        analyze(vec![
            "--lang".into(),
            "java".into(),
            file.display().to_string(),
        ])
        .unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn graph_command_produces_dot() {
        let dir = tmpdir("graph");
        let file = dir.join("prog.u");
        fs::write(
            &file,
            "fn main(db) { f = db.getFile(\"a\"); n = f.getName(); }",
        )
        .unwrap();
        graph(vec![
            "--lang".into(),
            "java".into(),
            file.display().to_string(),
            "--dot".into(),
        ])
        .unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_renders_markdown() {
        let dir = tmpdir("report");
        let corpus = dir.join("corpus");
        let specs = dir.join("specs.json");
        generate(vec![
            "--lang".into(),
            "python".into(),
            "--files".into(),
            "150".into(),
            "--out".into(),
            corpus.display().to_string(),
        ])
        .unwrap();
        learn(vec![
            "--lang".into(),
            "python".into(),
            "--out".into(),
            specs.display().to_string(),
            corpus.display().to_string(),
        ])
        .unwrap();
        let out = dir.join("report.md");
        report(vec![
            specs.display().to_string(),
            "--out".into(),
            out.display().to_string(),
        ])
        .unwrap();
        let md = fs::read_to_string(&out).unwrap();
        assert!(md.starts_with("# Learned API aliasing specifications"));
        assert!(md.contains("| specification | score | matches |"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(generate(vec![
            "--lang".into(),
            "cobol".into(),
            "--out".into(),
            "/tmp/x".into()
        ])
        .is_err());
        assert!(learn(vec!["--lang".into(), "java".into()]).is_err());
        assert!(show(vec!["/nonexistent/specs.json".into()]).is_err());
        assert!(analyze(vec![
            "--lang".into(),
            "java".into(),
            "/nonexistent.u".into()
        ])
        .is_err());
    }

    #[test]
    fn engine_flag_selects_engine() {
        assert_eq!(
            engine_for(&opts(&["--engine", "naive"], &["engine"])).unwrap(),
            EngineKind::Naive
        );
        assert_eq!(
            engine_for(&opts(&["--engine", "worklist"], &["engine"])).unwrap(),
            EngineKind::Worklist
        );
        assert_eq!(
            engine_for(&opts(&[], &["engine"])).unwrap(),
            EngineKind::default()
        );
        let err = engine_for(&opts(&["--engine", "magic"], &["engine"])).unwrap_err();
        assert!(err.0.contains("unknown engine"), "{err}");

        // End to end: analyze accepts the flag with both engines.
        let dir = tmpdir("engine");
        let file = dir.join("prog.u");
        fs::write(&file, "fn main(db) { f = db.getFile(\"a\"); f.getName(); }").unwrap();
        for engine in ["naive", "worklist"] {
            analyze(vec![
                "--lang".into(),
                "java".into(),
                "--engine".into(),
                engine.into(),
                file.display().to_string(),
            ])
            .unwrap();
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn library_selection() {
        assert_eq!(
            library_for(&opts(&["--lang", "python"], &["lang"]))
                .unwrap()
                .universe,
            uspec_corpus::Universe::Python
        );
        assert!(library_for(&opts(&["--lang", "perl"], &["lang"])).is_err());
    }
}
