//! `uspec` — command-line interface for the USpec reproduction.
//!
//! ```text
//! uspec generate --lang java --files 500 --out corpus/      write a corpus
//! uspec learn    --lang java --out specs.json corpus/       learn specs
//! uspec show     specs.json [--tau 0.6]                     inspect specs
//! uspec explain  specs.json RetArg [--json]                 spec evidence
//! uspec analyze  --lang java --specs specs.json file.u      aliasing report
//! uspec graph    --lang java file.u [--dot]                 event graph
//! uspec atlas    --lang java                                dynamic baseline
//! ```

mod commands;
mod opt;
mod perf;
mod serve;

use opt::OptError;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "help" {
        print_usage();
        return;
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "generate" => commands::generate(args),
        "learn" => commands::learn(args),
        "show" => commands::show(args),
        "explain" => commands::explain(args),
        "analyze" => commands::analyze(args),
        "graph" => commands::graph(args),
        "atlas" => commands::atlas(args),
        "eval" => commands::eval(args),
        "report" => commands::report(args),
        "cache" => commands::cache(args),
        "perf" => perf::perf(args),
        "serve" => serve::serve(args),
        "top" => serve::top(args),
        other => Err(OptError(format!(
            "unknown command `{other}`; run `uspec help`"
        ))),
    };
    if let Err(e) = result {
        uspec_telemetry::log_error!("{e}");
        std::process::exit(1);
    }
}

fn print_usage() {
    println!(
        "uspec — unsupervised learning of API aliasing specifications

USAGE:
  uspec generate --lang <java|python> [--files N] [--seed S] --out DIR
      Generate a synthetic corpus of mini-language files (*.u).

  uspec learn --lang <java|python> [--tau T] [--out specs.json] DIR...
      Learn aliasing specifications from every *.u file under the given
      directories; print the ranked candidates and optionally save them.
      Shared analysis flags: --shard-size N  --max-diagnostics N
      --engine <worklist|naive>  (points-to solver; worklist is the default,
      naive is the reference implementation — results are identical)

  Artifact cache (learn, eval, analyze):
      --cache-dir DIR     persist per-file job outputs (stats, samples, pair
          blueprints, value digests) plus the trained model and corpus score
          artifact, each keyed by a content fingerprint of its actual
          inputs; a re-run re-executes only the edited files' cones.
          Results are byte-identical with and without the cache. Falls back
          to the USPEC_CACHE_DIR environment variable when the flag is
          absent (the flag wins).
      --dirty a.u,b.u     (learn) distrust the cached entries of these file
          names and force their per-file jobs to re-execute; downstream
          model/score work re-runs only if the recomputed outputs actually
          changed. Cannot change the learned result.

  Output control (every command):
      --log-level <error|warn|info|debug|trace>   status verbosity (stderr;
          default info; debug echoes timing spans)
      -q                                          shorthand for errors only
  Machine-readable metrics (learn, eval, analyze):
      --metrics-out FILE.json    write the versioned run report (schema 7):
          counters, diagnostics, provenance, and timings for the whole run
          (cache, job-engine, and per-job cost activity appear under the
          machine-local timings.cache / timings.jobs / timings.attribution
          sections)
  Run ledger (learn, eval, analyze):
      --ledger DIR        append this run's ledger entry (envelope +
          invariant counters + timings) to DIR; without the flag, entries
          go to <cache-dir>/ledger/ whenever a cache is configured
      --no-ledger         record nothing, even with a cache configured
  Span timeline (learn, eval, analyze):
      --trace-out FILE.json      write the run's span tree in Chrome
          trace_events format (complete \"X\" events; open in Perfetto or
          chrome://tracing)
  Cost attribution (learn, eval):
      --flame-out FILE    write the per-job cost tree as collapsed-stack
          lines (kind;kind;kind self_ns), ready for any flamegraph tool

  uspec show FILE [--tau T]
      Pretty-print a saved specification file.

  uspec explain FILE <spec substring> | --all [--json] [--tau T] [--top N]
      Show the evidence behind learned specs: the corpus call sites
      (file:line) whose induced edges scored each candidate, per-feature
      logit contributions (--top per edge), and a counterfactual — the
      score without the strongest edge, and whether selection at τ flips.

  uspec analyze --lang <java|python> [--specs FILE] [--tau T] FILE.u
      Analyze one file with the API-unaware baseline and (if specs are
      given) the augmented analysis; report solver statistics and the
      aliasing differences. Accepts --engine <worklist|naive>.
      Optional clients: --typestate guard:action  --taint srcs:sinks:sans

  uspec graph --lang <java|python> FILE.u [--dot]
      Print the event graph of a file (Graphviz DOT with --dot).

  uspec atlas --lang <java|python>
      Run the Atlas-style dynamic baseline over the builtin library.

  uspec eval --lang <java|python> [--files N] [--seed S] [--taus 0,0.6,...]
      Learn from a generated corpus and score the candidates against the
      builtin ground truth (precision/recall per τ, as in Fig. 7).

  uspec report FILE [--tau T] [--out report.md]
      Render a saved specification file as a Markdown report per API class.

  uspec cache <stats|verify|gc> --cache-dir DIR [--max-bytes N] [--json]
      Inspect (stats), check (verify), or shrink (gc, to at most
      --max-bytes, least-recently-used first) an artifact cache directory.
      stats and verify print JSON with --json. Also honors USPEC_CACHE_DIR.

  uspec serve --lang <java|python> (--socket PATH | --tcp ADDR) DIR
      Run the resident spec-query daemon: learn the corpus once, watch it
      for edits (re-learning only the edited files' job cones through the
      artifact cache), and answer newline-delimited JSON requests on the
      socket. Methods: spec.lookup, alias.may, explain, analyze.snippet,
      status, metrics.snapshot, shutdown. Each response carries a
      server-stamped request number and the spec generation it was
      answered from; every request is recorded into per-method sliding
      latency windows and a slow-query log. Accepts the shared analysis,
      cache, ledger, metrics, and logging flags plus:
        --poll-ms N       corpus scan interval (default 50)
        --debounce-ms N   quiet period before re-learning a batch (100)
        --workers N       concurrent request workers (default 4)
        --prom-out FILE   rewrite FILE atomically about once a second with
                          the whole telemetry plane in Prometheus text
                          exposition format
        --budgets FILE    arm the live SLO sentinel with the [serve] table
                          of the budgets file (p99_ms_max, error_rate_max,
                          staleness_ms_max); defaults to perf-budgets.toml
                          when present. Breaches are logged, counted in the
                          exit report, and enforced by `uspec perf check`.
      One-shot client mode (no corpus, daemon must be running):
        uspec serve --send LINE (--socket PATH | --tcp ADDR) [--timeout SECS]
            send one request line, print the one response line, exit; a
            daemon that stops answering within the deadline (default 10 s,
            0 disables) is a typed error, not a hang.

  uspec top (--socket PATH | --tcp ADDR) [--timeout SECS] [--json]
      One-shot observability view of a running daemon: fetch
      metrics.snapshot and render generation, staleness, SLO breaches,
      per-method windowed latency percentiles, and the slowest requests
      (--json prints the raw response envelope).

  uspec perf <list|show|diff|check> [--ledger DIR | --cache-dir DIR]
      Inspect the run ledger and enforce performance budgets.
        list [--json]            one line per recorded run, oldest first
                                 (--json: array of entry summaries)
        show [ID] [--json]       full JSON of one entry (default: latest;
                                 --json: compact single-line output)
        diff [BEFORE AFTER]      compare two entries (default: prev latest);
            invariant counters compare exactly, timings with a noise floor
        check [--budgets FILE] [--bench-dir DIR]
            evaluate perf-budgets.toml (warm_speedup, cache_hit_rate,
            invariant_drift, telemetry_overhead, and the [serve] SLO
            ceilings, judged against the latest entry with daemon
            traffic) against the ledger and exit non-zero on any
            violated budget.
      Entry ids accept the aliases `latest` and `prev`. The ledger
      directory defaults to <cache-dir>/ledger (gc never touches it)."
    );
}
