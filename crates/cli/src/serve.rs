//! `uspec serve` — run (or query) the resident spec-query daemon — and
//! `uspec top`, its one-shot observability view.
//!
//! Server mode learns the corpus once, then stays resident: a polling
//! watcher re-learns edited files' job cones and swaps generations while
//! workers answer newline-JSON queries on a Unix (or TCP) socket. The
//! idle loop doubles as the observability plane's pump: about once a
//! second it feeds the SLO sentinel and (with `--prom-out`) atomically
//! rewrites the Prometheus text exposition file. Client mode
//! (`--send LINE`) connects with a deadline, sends one request line,
//! prints the one response line, and exits — enough for shell scripts
//! and the CI smoke test without any external socket tool.

use std::path::{Path, PathBuf};
use std::time::Duration;

use uspec_serve::json::Json;
use uspec_serve::{Listener, ServeOptions, Server, SloPolicy, SloSentinel};
use uspec_telemetry::perf::Budgets;
use uspec_telemetry::{log_info, log_warn};

use crate::commands::{
    cache_dir, init_logging, ledger_dest, library_for, pipeline_opts, write_metrics,
};
use crate::opt::{OptError, Opts};

const USAGE: &str = "usage: uspec serve --lang <java|python> (--socket PATH | --tcp ADDR) DIR\n\
                     \x20      uspec serve --send LINE (--socket PATH | --tcp ADDR) [--timeout SECS]";

const TOP_USAGE: &str = "usage: uspec top (--socket PATH | --tcp ADDR) [--timeout SECS] [--json]";

/// Idle-loop ticks (100 ms each) between sentinel observations and
/// exposition rewrites.
const OBSERVE_EVERY_TICKS: u64 = 10;

/// `--timeout SECS` (default 10; 0 disables the deadline).
fn send_timeout(opts: &Opts) -> Result<Option<Duration>, OptError> {
    let secs: u64 = opts.num("timeout", 10)?;
    Ok((secs > 0).then(|| Duration::from_secs(secs)))
}

/// Sends `lines` to the daemon named by `--socket`/`--tcp` under the
/// `--timeout` deadline; the shared client path of `--send` and `top`.
fn send_lines(opts: &Opts, lines: &[&str], usage: &str) -> Result<Vec<String>, OptError> {
    let timeout = send_timeout(opts)?;
    match (opts.value("socket"), opts.value("tcp")) {
        (Some(path), None) => uspec_serve::roundtrip_unix_timeout(Path::new(path), lines, timeout),
        (None, Some(addr)) => uspec_serve::roundtrip_tcp_timeout(addr, lines, timeout),
        _ => {
            return Err(OptError(format!(
                "exactly one of --socket PATH or --tcp ADDR is required\n{usage}"
            )))
        }
    }
    .map_err(|e| OptError(format!("sending request: {e}")))
}

/// The `[serve]` SLO policy: an explicit `--budgets FILE` must parse;
/// without the flag, `perf-budgets.toml` is used when present and the
/// policy stays disarmed when it is not.
fn slo_policy(opts: &Opts) -> Result<SloPolicy, OptError> {
    let (path, required) = match opts.value("budgets") {
        Some(p) => (p, true),
        None => ("perf-budgets.toml", false),
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if !required && e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(SloPolicy::default())
        }
        Err(e) => return Err(OptError(format!("reading {path}: {e}"))),
    };
    let budgets = Budgets::parse(&text).map_err(|e| OptError(format!("{path}: {e}")))?;
    Ok(SloPolicy {
        p99_ms_max: budgets.serve_p99_ms_max,
        error_rate_max: budgets.serve_error_rate_max,
        staleness_ms_max: budgets.serve_staleness_ms_max,
    })
}

/// Atomically replaces `path` with `text` (write-to-tmp + rename), so a
/// scraper never reads a torn exposition file. Failures are logged, not
/// fatal — observability must not take the daemon down.
fn write_exposition(path: &Path, text: &str) {
    let tmp = path.with_extension("prom.tmp");
    let done = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, path));
    if let Err(e) = done {
        log_warn!("serve: exposition write to {} failed: {e}", path.display());
    }
}

/// `uspec serve`.
pub fn serve(args: Vec<String>) -> Result<(), OptError> {
    let opts = Opts::parse(
        args,
        &[
            "lang",
            "socket",
            "tcp",
            "send",
            "timeout",
            "tau",
            "poll-ms",
            "debounce-ms",
            "workers",
            "shard-size",
            "max-diagnostics",
            "engine",
            "cache-dir",
            "metrics-out",
            "prom-out",
            "budgets",
            "ledger",
            "log-level",
        ],
    )?;
    init_logging(&opts)?;

    // One-shot client mode: no corpus, no daemon — talk to a running one.
    if let Some(line) = opts.value("send") {
        let response = send_lines(&opts, &[line], USAGE)?;
        println!("{}", response[0]);
        return Ok(());
    }

    let library = library_for(&opts)?;
    let corpus = opts
        .positional
        .first()
        .ok_or_else(|| OptError(format!("a corpus directory is required\n{USAGE}")))?;
    let policy = slo_policy(&opts)?;
    let prom_out = opts.value("prom-out").map(PathBuf::from);
    let serve_opts = ServeOptions {
        tau: opts.num("tau", 0.6)?,
        poll_ms: opts.num("poll-ms", 50)?,
        debounce_ms: opts.num("debounce-ms", 100)?,
        workers: opts.num("workers", 4)?,
        pipeline: pipeline_opts(&opts)?,
        cache_dir: cache_dir(&opts).map(PathBuf::from),
        ledger_dir: ledger_dest(&opts),
        ..ServeOptions::default()
    };
    let listener = match (opts.value("socket"), opts.value("tcp")) {
        (Some(path), None) => Listener::bind_unix(Path::new(path))
            .map_err(|e| OptError(format!("binding socket {path}: {e}")))?,
        (None, Some(addr)) => {
            Listener::bind_tcp(addr).map_err(|e| OptError(format!("binding {addr}: {e}")))?
        }
        _ => {
            return Err(OptError(format!(
                "exactly one of --socket PATH or --tcp ADDR is required\n{USAGE}"
            )))
        }
    };

    let server = Server::start(Path::new(corpus), &library, serve_opts, listener)
        .map_err(|e| OptError(format!("starting server: {e}")))?;
    match (server.socket_path(), server.tcp_addr()) {
        (Some(path), _) => log_info!("serve: listening on {}", path.display()),
        (None, Some(addr)) => log_info!("serve: listening on {addr}"),
        _ => {}
    }
    if policy.is_armed() {
        log_info!("serve: SLO sentinel armed");
    }
    log_info!("serve: send {{\"method\":\"shutdown\"}} to stop");

    // The daemon runs until a client requests shutdown. There is no signal
    // handling (no such dependency is vendored) — kill(1) also works, it
    // just skips the final metrics write below.
    let mut sentinel = SloSentinel::new(policy);
    let mut ticks = 0u64;
    while !server.shutting_down() {
        std::thread::sleep(Duration::from_millis(100));
        ticks += 1;
        if ticks.is_multiple_of(OBSERVE_EVERY_TICKS) {
            server.observe_slo(&mut sentinel);
            if let Some(path) = &prom_out {
                write_exposition(path, &server.prometheus_text());
            }
        }
    }
    // One last observation + scrape so short-lived runs (and the exit
    // report) still record the final window, staleness, and any breach.
    server.observe_slo(&mut sentinel);
    if let Some(path) = &prom_out {
        write_exposition(path, &server.prometheus_text());
    }
    let report = server.join();
    write_metrics(&opts, &report)?;
    log_info!("serve: stopped");
    Ok(())
}

/// `uspec top`: fetch `metrics.snapshot` from a running daemon and render
/// it as a human table (or the raw envelope with `--json`).
pub fn top(args: Vec<String>) -> Result<(), OptError> {
    let opts = Opts::parse(args, &["socket", "tcp", "timeout", "log-level"])?;
    init_logging(&opts)?;
    let response = send_lines(
        &opts,
        &[r#"{"id":0,"method":"metrics.snapshot"}"#],
        TOP_USAGE,
    )?;
    if opts.switch("json") {
        println!("{}", response[0]);
        return Ok(());
    }
    let envelope = uspec_serve::json::parse(&response[0])
        .map_err(|e| OptError(format!("unparseable response: {e}")))?;
    let snapshot = envelope
        .get("result")
        .ok_or_else(|| OptError(format!("daemon answered an error: {}", response[0])))?;
    print!("{}", render_top(snapshot));
    Ok(())
}

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Renders a parsed `metrics.snapshot` result as the `uspec top` table.
fn render_top(snapshot: &Json) -> String {
    use std::fmt::Write as _;
    let num = |v: &Json, key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "gen {}  uptime {:.1}s  staleness {}ms",
        num(snapshot, "gen"),
        num(snapshot, "uptime_ms") as f64 / 1e3,
        num(snapshot, "staleness_ms"),
    );
    if let Some(slo) = snapshot.get("slo") {
        let _ = writeln!(
            out,
            "slo breaches {} (p99 {}, error-rate {}, staleness {}); max staleness {}ms",
            num(slo, "breaches"),
            num(slo, "p99_breaches"),
            num(slo, "error_rate_breaches"),
            num(slo, "staleness_breaches"),
            num(slo, "max_staleness_ms"),
        );
    }
    if let Some(Json::Obj(windows)) = snapshot.get("windows") {
        let _ = writeln!(
            out,
            "\n{:<18} {:>8} {:>7} {:>10} {:>10} {:>10} {:>10}",
            "stream", "req/60s", "errors", "p50 ms", "p95 ms", "p99 ms", "total"
        );
        for (stream, w) in windows {
            if num(w, "total_requests") == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<18} {:>8} {:>7} {:>10} {:>10} {:>10} {:>10}",
                stream,
                num(w, "requests"),
                num(w, "errors"),
                ms(num(w, "p50_ns")),
                ms(num(w, "p95_ns")),
                ms(num(w, "p99_ns")),
                num(w, "total_requests"),
            );
        }
    }
    if let Some(Json::Arr(slow)) = snapshot.get("slow") {
        if !slow.is_empty() {
            let _ = writeln!(
                out,
                "\nslowest requests\n{:<18} {:>10} {:>5} {:>9} {:>10}",
                "method", "ms", "gen", "req bytes", "resp bytes"
            );
            for q in slow {
                let _ = writeln!(
                    out,
                    "{:<18} {:>10} {:>5} {:>9} {:>10}",
                    q.get("method").and_then(Json::as_str).unwrap_or("?"),
                    ms(num(q, "latency_ns")),
                    num(q, "gen"),
                    num(q, "request_bytes"),
                    num(q, "response_bytes"),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_top_shows_busy_streams_and_slow_queries() {
        let snapshot = uspec_serve::json::parse(
            r#"{"gen":2,"uptime_ms":61500,"staleness_ms":0,
                "windows":{"all":{"requests":5,"errors":1,"p50_ns":2000000,"p95_ns":9000000,
                                   "p99_ns":9000000,"total_requests":12},
                           "idle":{"requests":0,"errors":0,"p50_ns":0,"p95_ns":0,
                                   "p99_ns":0,"total_requests":0}},
                "slow":[{"method":"status","latency_ns":9000000,"gen":2,
                         "request_bytes":30,"response_bytes":200}],
                "slo":{"breaches":1,"p99_breaches":1,"error_rate_breaches":0,
                       "staleness_breaches":0,"max_staleness_ms":40}}"#,
        )
        .unwrap();
        let table = render_top(&snapshot);
        assert!(table.contains("gen 2"));
        assert!(table.contains("slo breaches 1"));
        assert!(table.contains("all"), "busy stream listed");
        assert!(!table.contains("idle"), "zero-traffic stream hidden");
        assert!(table.contains("9.000"), "latencies render in ms");
        assert!(table.contains("status"), "slow query listed");
    }
}
