//! `uspec serve` — run (or query) the resident spec-query daemon.
//!
//! Server mode learns the corpus once, then stays resident: a polling
//! watcher re-learns edited files' job cones and swaps generations while
//! workers answer newline-JSON queries on a Unix (or TCP) socket. Client
//! mode (`--send LINE`) connects, sends one request line, prints the one
//! response line, and exits — enough for shell scripts and the CI smoke
//! test without any external socket tool.

use std::path::{Path, PathBuf};
use std::time::Duration;

use uspec_serve::{Listener, ServeOptions, Server};
use uspec_telemetry::log_info;

use crate::commands::{
    cache_dir, init_logging, ledger_dest, library_for, pipeline_opts, write_metrics,
};
use crate::opt::{OptError, Opts};

const USAGE: &str = "usage: uspec serve --lang <java|python> (--socket PATH | --tcp ADDR) DIR\n\
                     \x20      uspec serve --send LINE (--socket PATH | --tcp ADDR)";

/// `uspec serve`.
pub fn serve(args: Vec<String>) -> Result<(), OptError> {
    let opts = Opts::parse(
        args,
        &[
            "lang",
            "socket",
            "tcp",
            "send",
            "tau",
            "poll-ms",
            "debounce-ms",
            "workers",
            "shard-size",
            "max-diagnostics",
            "engine",
            "cache-dir",
            "metrics-out",
            "ledger",
            "log-level",
        ],
    )?;
    init_logging(&opts)?;

    // One-shot client mode: no corpus, no daemon — talk to a running one.
    if let Some(line) = opts.value("send") {
        let response = match (opts.value("socket"), opts.value("tcp")) {
            (Some(path), None) => uspec_serve::roundtrip_unix(Path::new(path), &[line]),
            (None, Some(addr)) => uspec_serve::roundtrip_tcp(addr, &[line]),
            _ => {
                return Err(OptError(format!(
                    "--send needs exactly one of --socket PATH or --tcp ADDR\n{USAGE}"
                )))
            }
        }
        .map_err(|e| OptError(format!("sending request: {e}")))?;
        println!("{}", response[0]);
        return Ok(());
    }

    let library = library_for(&opts)?;
    let corpus = opts
        .positional
        .first()
        .ok_or_else(|| OptError(format!("a corpus directory is required\n{USAGE}")))?;
    let serve_opts = ServeOptions {
        tau: opts.num("tau", 0.6)?,
        poll_ms: opts.num("poll-ms", 50)?,
        debounce_ms: opts.num("debounce-ms", 100)?,
        workers: opts.num("workers", 4)?,
        pipeline: pipeline_opts(&opts)?,
        cache_dir: cache_dir(&opts).map(PathBuf::from),
        ledger_dir: ledger_dest(&opts),
        ..ServeOptions::default()
    };
    let listener = match (opts.value("socket"), opts.value("tcp")) {
        (Some(path), None) => Listener::bind_unix(Path::new(path))
            .map_err(|e| OptError(format!("binding socket {path}: {e}")))?,
        (None, Some(addr)) => {
            Listener::bind_tcp(addr).map_err(|e| OptError(format!("binding {addr}: {e}")))?
        }
        _ => {
            return Err(OptError(format!(
                "exactly one of --socket PATH or --tcp ADDR is required\n{USAGE}"
            )))
        }
    };

    let server = Server::start(Path::new(corpus), &library, serve_opts, listener)
        .map_err(|e| OptError(format!("starting server: {e}")))?;
    match (server.socket_path(), server.tcp_addr()) {
        (Some(path), _) => log_info!("serve: listening on {}", path.display()),
        (None, Some(addr)) => log_info!("serve: listening on {addr}"),
        _ => {}
    }
    log_info!("serve: send {{\"method\":\"shutdown\"}} to stop");

    // The daemon runs until a client requests shutdown. There is no signal
    // handling (no such dependency is vendored) — kill(1) also works, it
    // just skips the final metrics write below.
    while !server.shutting_down() {
        std::thread::sleep(Duration::from_millis(100));
    }
    let report = server.final_report();
    server.join();
    write_metrics(&opts, &report)?;
    log_info!("serve: stopped");
    Ok(())
}
