//! Offline stand-in for the `serde_json` crate.
//!
//! Implements `to_string`, `to_string_pretty`, and `from_str` over the stub
//! serde's value tree with a recursive-descent JSON parser. Matches real
//! serde_json's observable behavior for the structures this workspace
//! serializes: externally-tagged enums, 2-space pretty indentation, shortest
//! round-trip float formatting (via Rust's float `Display`), and errors on
//! non-finite floats.

use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = serde::__private::to_value::<T, Error>(value)?;
    let mut out = String::new();
    write_value(&mut out, &v, None, 0)?;
    Ok(out)
}

/// Serializes a value to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = serde::__private::to_value::<T, Error>(value)?;
    let mut out = String::new();
    write_value(&mut out, &v, Some(2), 0)?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T> {
    let v = Parser::new(s).parse_document()?;
    serde::__private::from_value(v)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F32(f) => write_float(out, *f as f64, f.to_string())?,
        Value::F64(f) => write_float(out, *f, f.to_string())?,
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => write_seq(out, items, indent, depth)?,
        Value::Map(entries) => write_map(out, entries, indent, depth)?,
    }
    Ok(())
}

fn write_float(out: &mut String, probe: f64, repr: String) -> Result<()> {
    if !probe.is_finite() {
        return Err(Error("cannot serialize non-finite float as JSON".into()));
    }
    out.push_str(&repr);
    // Rust's float Display omits ".0" for integral values; real serde_json
    // keeps it, and keeping it makes the value parse back as a float.
    if !repr.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
    Ok(())
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_seq(out: &mut String, items: &[Value], indent: Option<usize>, depth: usize) -> Result<()> {
    if items.is_empty() {
        out.push_str("[]");
        return Ok(());
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_newline_indent(out, indent, depth + 1);
        write_value(out, item, indent, depth + 1)?;
    }
    push_newline_indent(out, indent, depth);
    out.push(']');
    Ok(())
}

fn write_map(
    out: &mut String,
    entries: &[(String, Value)],
    indent: Option<usize>,
    depth: usize,
) -> Result<()> {
    if entries.is_empty() {
        out.push_str("{}");
        return Ok(());
    }
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_newline_indent(out, indent, depth + 1);
        write_json_string(out, k);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, v, indent, depth + 1)?;
    }
    push_newline_indent(out, indent, depth);
    out.push('}');
    Ok(())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn parse_document(mut self) -> Result<Value> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek().ok_or_else(|| self.err("unexpected end of input"))? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(self.err(&format!("unexpected character `{}`", other as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a following \uXXXX.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8).
                    let start = self.pos;
                    let width = utf8_width(b);
                    self.pos += width;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err("invalid float"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f32).unwrap(), "2.0");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        let x: f32 = from_str(&to_string(&0.1f32).unwrap()).unwrap();
        assert_eq!(x, 0.1f32);
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![(1u8, "x".to_string()), (2u8, "y".to_string())];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,\"x\"],[2,\"y\"]]");
        let back: Vec<(u8, String)> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let o: Option<u32> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        let back: Option<u32> = from_str("null").unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn float_roundtrip_exhaustive_bits() {
        // Random-ish f32 bit patterns must survive the
        // f32 → string → f64 → f32 path.
        let mut bits = 0x3F00_0001u32;
        for _ in 0..200 {
            bits = bits.wrapping_mul(1664525).wrapping_add(1013904223);
            let f = f32::from_bits(bits);
            if !f.is_finite() {
                continue;
            }
            let back: f32 = from_str(&to_string(&f).unwrap()).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "bits {bits:#x}");
        }
    }

    #[test]
    fn pretty_format() {
        let v = vec![1u8, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "Aé😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<u32>("\"x\"").is_err());
        assert!(from_str::<String>("{").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
