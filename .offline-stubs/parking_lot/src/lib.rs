//! Offline stand-in for the `parking_lot` crate.
//!
//! Thin non-poisoning wrappers over `std::sync` primitives with the
//! `parking_lot` lock API (`lock()`/`read()`/`write()` returning guards
//! directly instead of `Result`s).

use std::sync::{self, TryLockError};

/// A mutex with the `parking_lot::Mutex` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Never poisons.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock. Never poisons.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
