//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the `rand` 0.8 API surface this workspace uses
//! (`Rng::{gen, gen_range, gen_bool}`, `seq::SliceRandom::{choose, shuffle}`,
//! `RngCore`, `SeedableRng`) with a real, deterministic PRNG behind it, so
//! the workspace builds and its tests run on machines without crates.io
//! access. Not a drop-in statistical replacement: streams differ from the
//! real crate.

/// A random number generator core: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand_core::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// 64-bit finalization mix (splitmix64), used for seeding.
pub fn __splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// Types with a uniform sampler over a bounded interval.
///
/// Mirrors real rand's `SampleUniform` so that `SampleRange` can be a single
/// blanket impl per range kind — that shape is what lets
/// `rng.gen_range(0..20)` resolve the literal to `i32` via integer fallback.
pub trait SampleUniform: Sized {
    /// Draws from `[lo, hi)` (`inclusive = false`) or `[lo, hi]` (`true`).
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty range in gen_range");
                let v = ((rng.next_u64() as u128) % span) as i128 + lo as i128;
                v as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                _inclusive: bool,
            ) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let unit = <$t as Standard>::standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range samplable by [`Rng::gen_range`], generic over the element type
/// exactly like real rand 0.8.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing RNG extension trait.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        <f64 as Standard>::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices (`choose`, `shuffle`).
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct X(u64);
    impl RngCore for X {
        fn next_u64(&mut self) -> u64 {
            self.0 = __splitmix64(self.0);
            self.0
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = X(7);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-5..7);
            assert!((-5..7).contains(&v));
            let u: usize = r.gen_range(3..=3);
            assert_eq!(u, 3);
            let f: f64 = r.gen_range(0.0..2.0);
            assert!((0.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = X(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = X(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
