//! Offline stand-in for the `rand_chacha` crate.
//!
//! `ChaCha8Rng` here is a deterministic xoshiro256**-backed generator, NOT
//! the ChaCha stream cipher: this workspace only relies on `ChaCha8Rng` as
//! "a deterministic RNG seedable from a u64", never on cipher fidelity or
//! stream compatibility with the real crate.

/// Re-exported core traits, mirroring `rand_chacha::rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

use rand::{RngCore, SeedableRng};

/// Deterministic RNG with the `ChaCha8Rng` name and seeding API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // Expand the 64-bit seed into the full state with splitmix64, the
        // standard recommendation for seeding xoshiro generators.
        let mut x = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = rand::__splitmix64(x);
            *slot = x;
        }
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** step.
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let v: u64 = r.gen();
        let w = r.gen_range(0..10usize);
        assert!(w < 10);
        let _ = v;
    }
}
