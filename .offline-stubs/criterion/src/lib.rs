//! Offline stand-in for the `criterion` crate.
//!
//! Implements the harness API this workspace's benches use
//! (`Criterion::default().sample_size(..)`, `bench_function`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `criterion_group!`,
//! `criterion_main!`) with a plain wall-clock timer and mean-per-iteration
//! reporting — no statistics, plots, or CLI filtering.

use std::time::Instant;

/// How batched inputs are sized (ignored by the stub timer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed_ns: 0,
            timed_iters: 0,
        };
        f(&mut b);
        if b.timed_iters > 0 {
            let per_iter = b.elapsed_ns / b.timed_iters as u128;
            println!("bench {name}: {per_iter} ns/iter ({} iters)", b.timed_iters);
        } else {
            println!("bench {name}: no iterations recorded");
        }
        self
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
    timed_iters: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.timed_iters += self.iters;
    }

    /// Times `routine` with a fresh un-timed `setup` input per iteration.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed_ns += start.elapsed().as_nanos();
            self.timed_iters += 1;
        }
    }
}

/// Prevents the optimizer from eliding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Defines a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Defines `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
