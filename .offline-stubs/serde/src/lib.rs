//! Offline stand-in for the `serde` crate.
//!
//! Implements the serde API surface this workspace uses — `Serialize` /
//! `Deserialize` traits with derive support, `Serializer::{serialize_str,
//! serialize_struct}`, and `ser::SerializeStruct` — over an internal
//! self-describing [`value::Value`] tree. The companion `serde_json` stub
//! prints/parses that tree. Not a general serde replacement: custom
//! `Serializer`/`Deserializer` backends beyond the provided value-based one
//! and `#[serde(...)]` attributes are unsupported.

pub mod value {
    //! The self-describing data tree all (de)serialization routes through.

    /// A serialized value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// JSON `null` / Rust `None` / unit.
        Null,
        /// A boolean.
        Bool(bool),
        /// A signed integer (negative values).
        I64(i64),
        /// An unsigned integer (non-negative values).
        U64(u64),
        /// A 32-bit float, kept narrow so it prints with `f32` precision.
        F32(f32),
        /// A 64-bit float.
        F64(f64),
        /// A string.
        Str(String),
        /// A sequence.
        Seq(Vec<Value>),
        /// A map with string keys, in insertion order.
        Map(Vec<(String, Value)>),
    }

    impl Value {
        /// Short description of the value's kind, for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::I64(_) | Value::U64(_) => "integer",
                Value::F32(_) | Value::F64(_) => "float",
                Value::Str(_) => "string",
                Value::Seq(_) => "sequence",
                Value::Map(_) => "map",
            }
        }
    }
}

use value::Value;

pub mod ser {
    //! Serialization-side helper traits.

    /// Errors produced while serializing.
    pub trait Error: Sized + std::fmt::Display {
        /// Creates an error with an arbitrary message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// Builder returned by `Serializer::serialize_struct`.
    pub trait SerializeStruct {
        /// Final output type.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Appends one named field.
        fn serialize_field<T: crate::Serialize + ?Sized>(
            &mut self,
            name: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finishes the struct.
        fn end(self) -> Result<Self::Ok, Self::Error>
        where
            Self: Sized;
    }
}

pub mod de {
    //! Deserialization-side helper traits.

    /// Errors produced while deserializing.
    pub trait Error: Sized + std::fmt::Display {
        /// Creates an error with an arbitrary message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// A data structure that can be serialized.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error>;
}

/// A format backend that data structures serialize into.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: ser::Error;
    /// Struct builder type.
    type SerializeStruct: ser::SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Consumes an already-built value tree (the stub's primitive).
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;

    /// Begins serializing a struct with `len` fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;

    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(v.to_owned()))
    }

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(v))
    }

    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        if v >= 0 {
            self.serialize_value(Value::U64(v as u64))
        } else {
            self.serialize_value(Value::I64(v))
        }
    }

    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::U64(v))
    }

    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::F32(v))
    }

    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::F64(v))
    }

    /// Serializes a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }
}

/// A data structure that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error>;
}

/// A format backend that data structures deserialize from.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Produces the whole input as a value tree (the stub's primitive).
    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// Derive-macro and container-impl support; not part of the public API
/// surface mirrored from real serde.
pub mod __private {
    use super::{de, ser, value::Value, Deserialize, Deserializer, Serialize, Serializer};
    use std::marker::PhantomData;

    /// Serializer that builds a [`Value`] tree.
    pub struct ValueSerializer<E>(PhantomData<E>);

    impl<E> ValueSerializer<E> {
        /// Creates a value-building serializer.
        pub fn new() -> Self {
            ValueSerializer(PhantomData)
        }
    }

    impl<E> Default for ValueSerializer<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    /// Struct builder for [`ValueSerializer`].
    pub struct ValueStructBuilder<E> {
        fields: Vec<(String, Value)>,
        _marker: PhantomData<E>,
    }

    impl<E: ser::Error> ser::SerializeStruct for ValueStructBuilder<E> {
        type Ok = Value;
        type Error = E;

        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            name: &'static str,
            value: &T,
        ) -> Result<(), E> {
            let v = to_value::<T, E>(value)?;
            self.fields.push((name.to_owned(), v));
            Ok(())
        }

        fn end(self) -> Result<Value, E> {
            Ok(Value::Map(self.fields))
        }
    }

    impl<E: ser::Error> Serializer for ValueSerializer<E> {
        type Ok = Value;
        type Error = E;
        type SerializeStruct = ValueStructBuilder<E>;

        fn serialize_value(self, v: Value) -> Result<Value, E> {
            Ok(v)
        }

        fn serialize_struct(self, _name: &'static str, len: usize) -> Result<Self::SerializeStruct, E> {
            Ok(ValueStructBuilder {
                fields: Vec::with_capacity(len),
                _marker: PhantomData,
            })
        }
    }

    /// Serializes any value into a [`Value`] tree.
    pub fn to_value<T: Serialize + ?Sized, E: ser::Error>(value: &T) -> Result<Value, E> {
        value.serialize(ValueSerializer::<E>::new())
    }

    /// Deserializer that reads from a [`Value`] tree.
    pub struct ValueDeserializer<E> {
        value: Value,
        _marker: PhantomData<E>,
    }

    impl<E> ValueDeserializer<E> {
        /// Wraps a value tree.
        pub fn new(value: Value) -> Self {
            ValueDeserializer {
                value,
                _marker: PhantomData,
            }
        }
    }

    impl<'de, E: de::Error> Deserializer<'de> for ValueDeserializer<E> {
        type Error = E;

        fn deserialize_value(self) -> Result<Value, E> {
            Ok(self.value)
        }
    }

    /// Deserializes any value from a [`Value`] tree.
    pub fn from_value<'de, T: Deserialize<'de>, E: de::Error>(v: Value) -> Result<T, E> {
        T::deserialize(ValueDeserializer::<E>::new(v))
    }

    /// Unwraps a map value, for struct deserialization.
    pub fn into_map<E: de::Error>(v: Value, what: &str) -> Result<Vec<(String, Value)>, E> {
        match v {
            Value::Map(m) => Ok(m),
            other => Err(E::custom(format!("expected map for {what}, got {}", other.kind()))),
        }
    }

    /// Unwraps a sequence value, for tuple deserialization.
    pub fn into_seq<E: de::Error>(v: Value, what: &str) -> Result<Vec<Value>, E> {
        match v {
            Value::Seq(s) => Ok(s),
            other => Err(E::custom(format!(
                "expected sequence for {what}, got {}",
                other.kind()
            ))),
        }
    }

    /// Removes and deserializes the named field from a struct map.
    pub fn take_field<'de, T: Deserialize<'de>, E: de::Error>(
        map: &mut Vec<(String, Value)>,
        owner: &str,
        name: &str,
    ) -> Result<T, E> {
        let idx = map
            .iter()
            .position(|(k, _)| k == name)
            .ok_or_else(|| E::custom(format!("missing field `{name}` in {owner}")))?;
        let (_, v) = map.remove(idx);
        from_value(v)
    }

    /// Checks that a sequence has exactly `n` elements and returns an
    /// iterator over them.
    pub fn seq_arity<E: de::Error>(
        seq: Vec<Value>,
        n: usize,
        what: &str,
    ) -> Result<std::vec::IntoIter<Value>, E> {
        if seq.len() != n {
            return Err(E::custom(format!(
                "expected {n} elements for {what}, got {}",
                seq.len()
            )));
        }
        Ok(seq.into_iter())
    }

    /// Splits an externally-tagged enum value into `(variant, content)`:
    /// a plain string is a unit variant, a one-entry map a variant with
    /// content.
    pub fn enum_parts<E: de::Error>(v: Value) -> Result<(String, Option<Value>), E> {
        match v {
            Value::Str(tag) => Ok((tag, None)),
            Value::Map(mut m) if m.len() == 1 => {
                let (tag, content) = m.pop().expect("len checked");
                Ok((tag, Some(content)))
            }
            other => Err(E::custom(format!(
                "expected enum (string or single-entry map), got {}",
                other.kind()
            ))),
        }
    }

    /// Unwraps the content of a non-unit enum variant.
    pub fn variant_content<E: de::Error>(
        content: Option<Value>,
        owner: &str,
        variant: &str,
    ) -> Result<Value, E> {
        content.ok_or_else(|| E::custom(format!("variant {owner}::{variant} requires content")))
    }

    /// Serializes a unit enum variant (externally tagged: just the name).
    pub fn unit_variant<S: Serializer>(ser: S, variant: &'static str) -> Result<S::Ok, S::Error> {
        ser.serialize_value(Value::Str(variant.to_owned()))
    }

    /// Serializes a newtype enum variant (`{"Variant": value}`).
    pub fn newtype_variant<S: Serializer, T: Serialize + ?Sized>(
        ser: S,
        variant: &'static str,
        value: &T,
    ) -> Result<S::Ok, S::Error> {
        let v = to_value::<T, S::Error>(value)?;
        ser.serialize_value(Value::Map(vec![(variant.to_owned(), v)]))
    }

    /// Serializes a tuple enum variant (`{"Variant": [v0, v1, ...]}`).
    pub fn tuple_variant<S: Serializer>(
        ser: S,
        variant: &'static str,
        values: Vec<Value>,
    ) -> Result<S::Ok, S::Error> {
        ser.serialize_value(Value::Map(vec![(variant.to_owned(), Value::Seq(values))]))
    }

    /// Serializes a struct enum variant (`{"Variant": {field: value, ...}}`).
    pub fn struct_variant<S: Serializer>(
        ser: S,
        variant: &'static str,
        fields: Vec<(String, Value)>,
    ) -> Result<S::Ok, S::Error> {
        ser.serialize_value(Value::Map(vec![(variant.to_owned(), Value::Map(fields))]))
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
                ser.serialize_u64(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
                ser.serialize_i64(*self as i64)
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_bool(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_f32(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_str(&self.to_string())
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(ser)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(ser)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        match self {
            None => ser.serialize_value(Value::Null),
            Some(v) => v.serialize(ser),
        }
    }
}

fn seq_to_value<'a, T: Serialize + 'a, E: ser::Error>(
    items: impl Iterator<Item = &'a T>,
) -> Result<Value, E> {
    let vs: Result<Vec<Value>, E> = items.map(|x| __private::to_value(x)).collect();
    Ok(Value::Seq(vs?))
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, S::Error>(self.iter())?;
        ser.serialize_value(v)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(ser)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(ser)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
                let vs = vec![$(__private::to_value::<_, S::Error>(&self.$n)?),+];
                ser.serialize_value(Value::Seq(vs))
            }
        }
    )*};
}
ser_tuple! {
    (0 T0)
    (0 T0, 1 T1)
    (0 T0, 1 T1, 2 T2)
    (0 T0, 1 T1, 2 T2, 3 T3)
}

fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a, E: ser::Error>(
    items: impl Iterator<Item = (&'a K, &'a V)>,
) -> Result<Value, E> {
    let mut out = Vec::new();
    for (k, v) in items {
        let key = match __private::to_value::<K, E>(k)? {
            Value::Str(s) => s,
            other => {
                return Err(E::custom(format!(
                    "map key must serialize to a string, got {}",
                    other.kind()
                )))
            }
        };
        out.push((key, __private::to_value::<V, E>(v)?));
    }
    Ok(Value::Map(out))
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        let v = map_to_value::<K, V, S::Error>(self.iter())?;
        ser.serialize_value(v)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        let v = map_to_value::<K, V, S::Error>(self.iter())?;
        ser.serialize_value(v)
    }
}

impl<T: Serialize, H> Serialize for std::collections::HashSet<T, H> {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, S::Error>(self.iter())?;
        ser.serialize_value(v)
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, S::Error>(self.iter())?;
        ser.serialize_value(v)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
                use de::Error;
                match de.deserialize_value()? {
                    Value::U64(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom(format!("{v} out of range for {}", stringify!($t)))),
                    Value::I64(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom(format!("{v} out of range for {}", stringify!($t)))),
                    other => Err(D::Error::custom(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        use de::Error;
        match de.deserialize_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::custom(format!("expected bool, got {}", other.kind()))),
        }
    }
}

fn value_to_f64<E: de::Error>(v: Value) -> Result<f64, E> {
    match v {
        Value::F64(f) => Ok(f),
        Value::F32(f) => Ok(f as f64),
        Value::U64(n) => Ok(n as f64),
        Value::I64(n) => Ok(n as f64),
        other => Err(E::custom(format!("expected number, got {}", other.kind()))),
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        value_to_f64(de.deserialize_value()?)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        // Matches real serde_json: parse as f64, narrow with `as`.
        Ok(value_to_f64::<D::Error>(de.deserialize_value()?)? as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        use de::Error;
        match de.deserialize_value()? {
            Value::Str(s) => Ok(s),
            other => Err(D::Error::custom(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        use de::Error;
        let s = String::deserialize(de)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(D::Error::custom("expected single-character string")),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        use de::Error;
        match de.deserialize_value()? {
            Value::Null => Ok(()),
            other => Err(D::Error::custom(format!("expected null, got {}", other.kind()))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        T::deserialize(de).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        match de.deserialize_value()? {
            Value::Null => Ok(None),
            v => __private::from_value(v).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        let seq = __private::into_seq::<D::Error>(de.deserialize_value()?, "Vec")?;
        seq.into_iter().map(__private::from_value).collect()
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
                let seq = __private::into_seq::<D::Error>(de.deserialize_value()?, "tuple")?;
                let mut it = __private::seq_arity::<D::Error>(seq, $len, "tuple")?;
                Ok(($({
                    let _ = $n;
                    __private::from_value::<$t, D::Error>(it.next().expect("arity checked"))?
                },)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 T0)
    (2; 0 T0, 1 T1)
    (3; 0 T0, 1 T1, 2 T2)
    (4; 0 T0, 1 T1, 2 T2, 3 T3)
}

fn value_to_map_entries<'de, K: Deserialize<'de>, V: Deserialize<'de>, E: de::Error>(
    v: Value,
) -> Result<Vec<(K, V)>, E> {
    let entries = __private::into_map::<E>(v, "map")?;
    entries
        .into_iter()
        .map(|(k, v)| {
            let key = __private::from_value::<K, E>(Value::Str(k))?;
            let val = __private::from_value::<V, E>(v)?;
            Ok((key, val))
        })
        .collect()
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        let entries = value_to_map_entries::<K, V, D::Error>(de.deserialize_value()?)?;
        Ok(entries.into_iter().collect())
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        let entries = value_to_map_entries::<K, V, D::Error>(de.deserialize_value()?)?;
        Ok(entries.into_iter().collect())
    }
}

impl<'de, T, H> Deserialize<'de> for std::collections::HashSet<T, H>
where
    T: Deserialize<'de> + std::hash::Hash + Eq,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        let seq = __private::into_seq::<D::Error>(de.deserialize_value()?, "set")?;
        seq.into_iter().map(__private::from_value).collect()
    }
}

impl<'de, T> Deserialize<'de> for std::collections::BTreeSet<T>
where
    T: Deserialize<'de> + Ord,
{
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        let seq = __private::into_seq::<D::Error>(de.deserialize_value()?, "set")?;
        seq.into_iter().map(__private::from_value).collect()
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
