//! Offline stand-in for the `serde_derive` crate.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` without
//! `syn`/`quote`: the item's token stream is parsed directly (only field and
//! variant *names* and arities are needed — never types, which stay fully
//! inferred in the generated code). Supports non-generic structs (named,
//! tuple, unit) and enums (unit, tuple, and struct variants) with the
//! externally-tagged representation real serde uses by default.
//! `#[serde(...)]` attributes and generic types are unsupported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

/// Derives `serde::Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for a non-generic struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, got {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }

    match kw.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(named_field_names(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive stub: unexpected struct body: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive stub: unexpected enum body: {other:?}"),
            };
            let variants = split_top_level(body)
                .into_iter()
                .map(|chunk| parse_variant(&chunk))
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // `#` + `[...]`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1; // `pub(crate)` etc.
                }
            }
            _ => return i,
        }
    }
}

/// Splits a token stream on commas at angle-bracket depth 0 (delimiters are
/// groups and already balanced); drops empty chunks (trailing commas).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                continue;
            }
            _ => {}
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn named_field_names(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .iter()
        .map(|chunk| {
            let i = skip_attrs_and_vis(chunk, 0);
            match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive stub: expected field name, got {other}"),
            }
        })
        .collect()
}

fn parse_variant(chunk: &[TokenTree]) -> (String, Fields) {
    let i = skip_attrs_and_vis(chunk, 0);
    let name = match &chunk[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected variant name, got {other}"),
    };
    let fields = match chunk.get(i + 1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(named_field_names(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(split_top_level(g.stream()).len())
        }
        None => Fields::Unit,
        Some(other) => panic!("serde_derive stub: unexpected variant body: {other}"),
    };
    (name, fields)
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, ser_struct_body(name, fields)),
        Item::Enum { name, variants } => (name, ser_enum_body(name, variants)),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __ser: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}"
    )
}

fn ser_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let mut s = format!(
                "let mut __st = ::serde::Serializer::serialize_struct(__ser, \"{name}\", {}usize)?;\n",
                names.len()
            );
            for f in names {
                s.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{f}\", &self.{f})?;\n"
                ));
            }
            s.push_str("::serde::ser::SerializeStruct::end(__st)");
            s
        }
        Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0, __ser)".to_string(),
        Fields::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__private::to_value::<_, __S::Error>(&self.{i})?"))
                .collect();
            format!(
                "let __vs = ::std::vec![{}];\n\
                 ::serde::Serializer::serialize_value(__ser, ::serde::value::Value::Seq(__vs))",
                elems.join(", ")
            )
        }
        Fields::Unit => "::serde::Serializer::serialize_unit(__ser)".to_string(),
    }
}

fn ser_enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = String::new();
    for (v, fields) in variants {
        match fields {
            Fields::Unit => arms.push_str(&format!(
                "{name}::{v} => ::serde::__private::unit_variant(__ser, \"{v}\"),\n"
            )),
            Fields::Tuple(1) => arms.push_str(&format!(
                "{name}::{v}(__f0) => ::serde::__private::newtype_variant(__ser, \"{v}\", __f0),\n"
            )),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let vals: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::__private::to_value::<_, __S::Error>(__f{i})?"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{v}({}) => ::serde::__private::tuple_variant(__ser, \"{v}\", ::std::vec![{}]),\n",
                    binds.join(", "),
                    vals.join(", ")
                ));
            }
            Fields::Named(fs) => {
                let binds: Vec<String> = fs
                    .iter()
                    .enumerate()
                    .map(|(i, f)| format!("{f}: __b{i}"))
                    .collect();
                let entries: Vec<String> = fs
                    .iter()
                    .enumerate()
                    .map(|(i, f)| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::__private::to_value::<_, __S::Error>(__b{i})?)"
                        )
                    })
                    .collect();
                arms.push_str(&format!(
                    "{name}::{v} {{ {} }} => ::serde::__private::struct_variant(__ser, \"{v}\", ::std::vec![{}]),\n",
                    binds.join(", "),
                    entries.join(", ")
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, de_struct_body(name, fields)),
        Item::Enum { name, variants } => (name, de_enum_body(name, variants)),
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__de: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n{body}\n}}\n}}"
    )
}

fn de_named_fields(name: &str, path: &str, names: &[String], map_expr: &str) -> String {
    let mut s = format!("let mut __m = ::serde::__private::into_map::<__D::Error>({map_expr}, \"{name}\")?;\n");
    let fields: Vec<String> = names
        .iter()
        .map(|f| {
            format!("{f}: ::serde::__private::take_field::<_, __D::Error>(&mut __m, \"{name}\", \"{f}\")?")
        })
        .collect();
    s.push_str(&format!(
        "::core::result::Result::Ok({path} {{ {} }})",
        fields.join(", ")
    ));
    s
}

fn de_tuple_fields(what: &str, path: &str, n: usize, seq_expr: &str) -> String {
    let mut s = format!(
        "let __seq = ::serde::__private::into_seq::<__D::Error>({seq_expr}, \"{what}\")?;\n\
         let mut __it = ::serde::__private::seq_arity::<__D::Error>(__seq, {n}usize, \"{what}\")?;\n"
    );
    let elems: Vec<String> = (0..n)
        .map(|_| {
            "::serde::__private::from_value::<_, __D::Error>(__it.next().expect(\"arity checked\"))?"
                .to_string()
        })
        .collect();
    s.push_str(&format!(
        "::core::result::Result::Ok({path}({}))",
        elems.join(", ")
    ));
    s
}

fn de_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => de_named_fields(
            name,
            name,
            names,
            "::serde::Deserializer::deserialize_value(__de)?",
        ),
        Fields::Tuple(1) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(__de)?))"
        ),
        Fields::Tuple(n) => de_tuple_fields(
            name,
            name,
            *n,
            "::serde::Deserializer::deserialize_value(__de)?",
        ),
        Fields::Unit => format!(
            "let _ = ::serde::Deserializer::deserialize_value(__de)?;\n\
             ::core::result::Result::Ok({name})"
        ),
    }
}

fn de_enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = String::new();
    for (v, fields) in variants {
        let what = format!("{name}::{v}");
        match fields {
            Fields::Unit => arms.push_str(&format!("\"{v}\" => ::core::result::Result::Ok({what}),\n")),
            Fields::Tuple(1) => arms.push_str(&format!(
                "\"{v}\" => {{\n\
                 let __c = ::serde::__private::variant_content::<__D::Error>(__content, \"{name}\", \"{v}\")?;\n\
                 ::core::result::Result::Ok({what}(::serde::__private::from_value::<_, __D::Error>(__c)?))\n\
                 }}\n"
            )),
            Fields::Tuple(n) => {
                let body = de_tuple_fields(&what, &what, *n, "__c");
                arms.push_str(&format!(
                    "\"{v}\" => {{\n\
                     let __c = ::serde::__private::variant_content::<__D::Error>(__content, \"{name}\", \"{v}\")?;\n\
                     {body}\n}}\n"
                ));
            }
            Fields::Named(fs) => {
                let body = de_named_fields(&what, &what, fs, "__c");
                arms.push_str(&format!(
                    "\"{v}\" => {{\n\
                     let __c = ::serde::__private::variant_content::<__D::Error>(__content, \"{name}\", \"{v}\")?;\n\
                     {body}\n}}\n"
                ));
            }
        }
    }
    format!(
        "let __v = ::serde::Deserializer::deserialize_value(__de)?;\n\
         let (__tag, __content) = ::serde::__private::enum_parts::<__D::Error>(__v)?;\n\
         match __tag.as_str() {{\n{arms}\
         __other => ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
         ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n}}"
    )
}
