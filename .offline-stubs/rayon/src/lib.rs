//! Offline stand-in for the `rayon` crate.
//!
//! Provides the data-parallel iterator API surface this workspace uses
//! (`par_iter`, `par_chunks`, `map`, `enumerate`, `filter`, `flat_map`,
//! `collect`, `reduce`, `sum`, `count`) executed **sequentially**. This keeps
//! the workspace buildable and its tests runnable without crates.io access;
//! results are identical to real rayon for the order-preserving operations
//! used here (rayon's `collect`/`reduce` on indexed iterators preserve
//! sequence order).

/// Common traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelSlice};
}

/// A "parallel" iterator: a thin wrapper over a sequential one.
pub struct Par<I> {
    inner: I,
}

/// Conversion of `&collection` into a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Element reference type.
    type Item: 'a;
    /// Underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Returns a parallel iterator over borrowed elements.
    fn par_iter(&'a self) -> Par<Self::Iter>;
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Par<Self::Iter> {
        Par { inner: self.iter() }
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Par<Self::Iter> {
        Par { inner: self.iter() }
    }
}

/// Parallel chunking of slices (`par_chunks`).
pub trait ParallelSlice<T> {
    /// Returns a parallel iterator over `chunk_size`-sized chunks.
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par {
            inner: self.chunks(chunk_size),
        }
    }
}

impl<I: Iterator> Par<I> {
    /// Maps each element through `f`.
    pub fn map<F, R>(self, f: F) -> Par<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        Par {
            inner: self.inner.map(f),
        }
    }

    /// Pairs each element with its sequence index.
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par {
            inner: self.inner.enumerate(),
        }
    }

    /// Keeps elements for which `f` returns `true`.
    pub fn filter<F>(self, f: F) -> Par<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        Par {
            inner: self.inner.filter(f),
        }
    }

    /// Maps and filters in one step.
    pub fn filter_map<F, R>(self, f: F) -> Par<std::iter::FilterMap<I, F>>
    where
        F: FnMut(I::Item) -> Option<R>,
    {
        Par {
            inner: self.inner.filter_map(f),
        }
    }

    /// Maps each element to an iterator and flattens the results in order.
    pub fn flat_map<F, U>(self, f: F) -> Par<std::iter::FlatMap<I, U, F>>
    where
        F: FnMut(I::Item) -> U,
        U: IntoIterator,
    {
        Par {
            inner: self.inner.flat_map(f),
        }
    }

    /// Collects into any `FromIterator` container, preserving order.
    pub fn collect<B>(self) -> B
    where
        B: FromIterator<I::Item>,
    {
        self.inner.collect()
    }

    /// Reduces all elements with `op`, starting from `identity()`.
    ///
    /// Real rayon may apply `op` in any association; every use in this
    /// workspace passes an associative `op`, for which the sequential
    /// left fold used here produces the same result.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.inner.fold(identity(), op)
    }

    /// Sums all elements.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.inner.sum()
    }

    /// Counts the elements.
    pub fn count(self) -> usize {
        self.inner.count()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v = vec![1, 2, 3, 4];
        let out: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, vec![2, 4, 6, 8]);
    }

    #[test]
    fn enumerate_reduce_matches_sequential() {
        let v: Vec<u64> = (0..100).collect();
        let folded: Vec<u64> = v
            .par_iter()
            .enumerate()
            .map(|(i, x)| vec![i as u64 + x])
            .reduce(Vec::new, |mut a, b| {
                a.extend(b);
                a
            });
        let expect: Vec<u64> = (0..100).map(|x| 2 * x).collect();
        assert_eq!(folded, expect);
    }

    #[test]
    fn par_chunks_sizes() {
        let v: Vec<u8> = (0..10).collect();
        let sizes: Vec<usize> = v[..].par_chunks(4).map(|c| c.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }
}
