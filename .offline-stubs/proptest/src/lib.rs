//! Offline stand-in for the `proptest` crate.
//!
//! Implements the property-testing surface this workspace uses — the
//! `proptest!` macro, `Strategy`/`BoxedStrategy`, range and regex-string
//! strategies, `prop_oneof!`/`Just`/`any`, `proptest::collection::vec`, and
//! panic-based `prop_assert!`/`prop_assert_eq!` — with a deterministic
//! per-test RNG (seeded from the test name) instead of real proptest's
//! persisted seeds and shrinking. Failures report the case number but are
//! not minimized.

pub mod test_runner {
    //! Test-loop configuration and RNG.

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Creates a config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG driving value generation (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG seeded from the test name, so each test has a
        /// stable, independent stream across runs.
        pub fn from_name(name: &str) -> TestRng {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            name.hash(&mut h);
            TestRng {
                state: h.finish() | 1,
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::rc::Rc;

    /// A recipe for generating random values of one type.
    ///
    /// Unlike real proptest there is no value tree or shrinking: `generate`
    /// directly produces a value.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type (shared, cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum checked in Union::new")
        }
    }

    /// Strategy for `any::<T>()`.
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    /// Types with a canonical full-range strategy.
    pub trait ArbitraryValue {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Canonical strategy for a type (`any::<bool>()` etc.).
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    range_strategy_float!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (0 T0, 1 T1)
        (0 T0, 1 T1, 2 T2)
        (0 T0, 1 T1, 2 T2, 3 T3)
    }

    /// String strategies from a regex-like pattern (see [`crate::pattern`]).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::pattern::generate(self, rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates `Vec<S::Value>` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod pattern {
    //! Generation from the regex subset used as string strategies:
    //! `\PC` (any printable char), `[...]` classes with ranges, literal
    //! characters, and the quantifiers `*`, `{n}`, `{m,n}`.

    use crate::test_runner::TestRng;

    enum Atom {
        Printable,
        Class(Vec<char>),
        Lit(char),
    }

    /// Mostly-ASCII printable alphabet with a few multi-byte characters, so
    /// `\PC*` exercises non-trivial UTF-8 without emitting control chars.
    const PRINTABLE_EXTRA: &[char] = &['é', 'λ', '→', '日', '😀', '\u{a0}'];

    fn printable(rng: &mut TestRng) -> char {
        let pick = rng.below(96 + PRINTABLE_EXTRA.len() as u64);
        if pick < 95 {
            (0x20 + pick as u8) as char
        } else {
            PRINTABLE_EXTRA[(pick - 95) as usize % PRINTABLE_EXTRA.len()]
        }
    }

    fn parse(pattern: &str) -> Vec<(Atom, (usize, usize))> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut out = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '\\' if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') => {
                    i += 3;
                    Atom::Printable
                }
                '\\' => {
                    let c = *chars.get(i + 1).expect("dangling escape in pattern");
                    i += 2;
                    Atom::Lit(c)
                }
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    while chars[i] != ']' {
                        let c = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2) != Some(&']') {
                            let hi = chars[i + 2];
                            for v in (c as u32)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(v) {
                                    set.push(ch);
                                }
                            }
                            i += 3;
                        } else {
                            set.push(c);
                            i += 1;
                        }
                    }
                    i += 1;
                    Atom::Class(set)
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            // Quantifier.
            let reps = match chars.get(i) {
                Some('*') => {
                    i += 1;
                    (0, 16)
                }
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unclosed quantifier")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad quantifier"),
                            hi.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n: usize = body.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            };
            out.push((atom, reps));
        }
        out
    }

    /// Generates one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, (lo, hi)) in parse(pattern) {
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                match &atom {
                    Atom::Printable => out.push(printable(rng)),
                    Atom::Class(set) => {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    Atom::Lit(c) => out.push(*c),
                }
            }
        }
        out
    }
}

pub use strategy::any;

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn` runs its body over random arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let ($($arg,)+) = ($($crate::strategy::Strategy::generate(&$strat, &mut __rng),)+);
                let __run = || { $body };
                __run();
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

/// Asserts a property; panics (failing the test case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality; panics (failing the test case) when unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Weighted (`w => strat`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 1u8..5, pair in (0u64..10, 0.0f32..1.0), b in any::<bool>()) {
            prop_assert!((1..5).contains(&x));
            prop_assert!(pair.0 < 10);
            prop_assert!((0.0..1.0).contains(&pair.1));
            let _ = b;
        }

        #[test]
        fn regex_like_strings(s in "\\PC{0,40}", t in "[a-z(){};=.\" ]{0,120}") {
            prop_assert!(s.chars().count() <= 40);
            prop_assert!(!s.chars().any(|c| c.is_control()));
            prop_assert!(t.len() <= 120);
            for c in t.chars() {
                prop_assert!("abcdefghijklmnopqrstuvwxyz(){};=.\" ".contains(c), "bad char {c:?}");
            }
        }

        #[test]
        fn oneof_and_vec(v in crate::collection::vec(prop_oneof![3 => Just(1u8), 1 => Just(2u8)], 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }

    #[test]
    fn boxed_strategies_clone_and_nest() {
        let mut rng = crate::test_runner::TestRng::from_name("nest");
        let leaf = prop_oneof![Just("x".to_string()), Just("y".to_string())].boxed();
        let both = (leaf.clone(), leaf).prop_map(|(a, b)| format!("{a}{b}"));
        for _ in 0..20 {
            let s = both.generate(&mut rng);
            assert_eq!(s.len(), 2);
        }
    }
}
